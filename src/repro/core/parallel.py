"""Sharded parallel execution: shard planning and reusable worker pools.

The compile-once/execute-many engine made repeated scoring cheap, but every
``score`` call still ran single-threaded: pattern extraction feeds one
batched evaluation, the clustered fuser walks its clusters serially, and
the compiled-plan column sweep owns a single core.  This module supplies
the dispatch layer that fans that work out:

- :class:`ShardPlanner` partitions ``n`` items (triples or patterns) into
  balanced blocks whose boundaries land on packed-word multiples (64 items,
  the ``uint64`` word width of :mod:`repro.core.bitset`), so per-shard
  bit-packed work never splits a word;
- :class:`WorkerPool` is a reusable pool -- threads by default (the hot
  loops are GIL-releasing numpy popcounts, gathers, and segmented sweeps),
  with a process backend option for CPython-bound fallbacks such as the
  scalar-model likelihood walk;
- :class:`ShardedExecutor` composes the two: plan shards, map a function
  over them on the pool, and hand back per-shard results *in shard order*
  so callers can merge by concatenation.

Bit-identity contract
---------------------
Everything dispatched through this module is column-independent: a
pattern's likelihood (and therefore a triple's score) depends only on its
own terms, never on which other patterns share its batch.  Sharding a
pattern set and concatenating per-shard results therefore reproduces the
serial output *bit for bit* -- the property the shard-equivalence suite
(``tests/test_parallel.py``) and ``benchmarks/bench_sharded_engine.py``
pin down to a max |score diff| of exactly 0.0.

Worker-pool lifecycle
---------------------
Pools are created lazily on first parallel dispatch and reused across
calls (the serving loop dispatches thousands of times through one pool).
``workers=1`` never creates a pool -- every map runs inline, which is also
the deterministic reference the equivalence tests compare against.  Pools
are owned per component (a fuser's executor and a quality model's executor
are distinct), so a cluster job blocking on a model batch call can never
deadlock the pool it runs on.

``close()`` shuts a pool down explicitly (pools are context managers, and
``ScoringSession.refit`` closes the retired fuser's and model's pools).
Maps issued after ``close()`` -- e.g. an in-flight score still holding the
retired fuser -- degrade gracefully to inline serial execution instead of
raising, so closing a pool can never break a concurrent caller, only
de-parallelise it.  A pool that is garbage-collected without an explicit
``close()`` shuts its executor down through a ``weakref`` finalizer, so
dropping the last reference to a fuser cannot leak executor threads or
processes.

``REPRO_DEFAULT_WORKERS`` sets the default worker count consulted when a
caller passes ``workers=None`` (the library default stays 1 -- serial);
CI runs the whole test suite once under ``REPRO_DEFAULT_WORKERS=2`` so the
parallel paths are exercised by every test.

Supervision
-----------
A map is a promise, not an attempt: :meth:`WorkerPool.map` *always*
returns ``[fn(x) for x in items]`` or raises ``fn``'s own error -- never
an infrastructure error.  A dead process worker (``BrokenProcessPool``
-- the whole pool is poisoned once any worker dies) or a watchdog
timeout (``map_timeout`` seconds per map, default
``$REPRO_MAP_TIMEOUT``) retires the executor and retries the map on a
fresh one, at most ``max_restarts`` times; beyond that the map runs
inline-serial on the calling thread, which cannot lose workers.  Faults
therefore cost latency, never results -- the same contract the scoring
engine gives for speed.  ``restarts`` / ``timeouts`` /
``inline_fallbacks`` counters surface through :attr:`WorkerPool.stats`
(and from there through ``ScoringSession.cache_stats()["pool"]``).
Retries re-run ``fn`` for every item in the map, so dispatched ``fn``
must stay idempotent -- true for everything here (pure per-shard
scoring), and the property the bit-identity suites already pin.
"""

from __future__ import annotations

import math
import os
import weakref
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, TypeVar

from repro.core import faults
from repro.core.locktrace import assert_map_safe, make_lock

#: Items per packed ``uint64`` word -- shard boundaries align to this so
#: bit-packed per-shard work never splits a word.
WORD_BITS = 64

#: Worker-pool backends: ``"thread"`` (default; the hot loops release the
#: GIL inside numpy) or ``"process"`` (for CPython-bound fallbacks; jobs and
#: their arguments must be picklable).
PARALLEL_BACKENDS = ("thread", "process")

#: Environment variable consulted when ``workers=None``: the default worker
#: count for every fuser / model / session built without an explicit knob.
WORKERS_ENV_VAR = "REPRO_DEFAULT_WORKERS"

#: Environment variable consulted when ``map_timeout=None``: the per-map
#: watchdog in (float) seconds for every pool built without an explicit
#: knob.  Unset / empty means no watchdog (the library default -- the
#: engine's maps are compute-bound and self-terminating; the watchdog
#: exists for chaos drills and belt-and-braces production configs).
MAP_TIMEOUT_ENV_VAR = "REPRO_MAP_TIMEOUT"

#: Executor rebuild attempts per map before falling back inline-serial.
DEFAULT_MAX_RESTARTS = 2

_T = TypeVar("_T")
_R = TypeVar("_R")


def _shutdown_executor(executor: Executor) -> None:
    """Finalizer target: shut an orphaned executor down without blocking.

    A module-level function (not a bound method) so the ``weakref.finalize``
    registration holds no reference back to the pool it guards.
    """
    executor.shutdown(wait=False)


def _range_call(job: "tuple[Callable[[int, int], _R], int, int]") -> "_R":
    """Worker-pool adapter: ``(fn, start, stop) -> fn(start, stop)``.

    Module-level (not a closure) so :meth:`ShardedExecutor.map_shards`
    works on the process backend too -- there ``fn`` itself must still be
    picklable (a module-level function or bound method of a picklable
    object).
    """
    fn, start, stop = job
    return fn(start, stop)


def check_backend(value: str, name: str = "backend") -> str:
    """Validate and normalise a worker-pool backend name."""
    key = str(value).lower()
    if key not in PARALLEL_BACKENDS:
        raise ValueError(
            f"unknown {name} {value!r}; expected one of {PARALLEL_BACKENDS}"
        )
    return key


def default_workers() -> int:
    """The ambient worker count: ``$REPRO_DEFAULT_WORKERS`` or 1 (serial)."""
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{WORKERS_ENV_VAR} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"{WORKERS_ENV_VAR} must be a positive integer, got {value}"
        )
    return value


def default_map_timeout() -> Optional[float]:
    """The ambient per-map watchdog: ``$REPRO_MAP_TIMEOUT`` or ``None``."""
    raw = os.environ.get(MAP_TIMEOUT_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{MAP_TIMEOUT_ENV_VAR} must be a positive number of seconds, "
            f"got {raw!r}"
        ) from None
    if value <= 0:
        raise ValueError(
            f"{MAP_TIMEOUT_ENV_VAR} must be a positive number of seconds, "
            f"got {value}"
        )
    return value


def resolve_map_timeout(
    map_timeout: Optional[float], name: str = "map_timeout"
) -> Optional[float]:
    """Resolve a watchdog knob: ``None`` consults ``$REPRO_MAP_TIMEOUT``."""
    if map_timeout is None:
        return default_map_timeout()
    timeout = float(map_timeout)
    if timeout <= 0:
        raise ValueError(
            f"{name} must be a positive number of seconds, got {map_timeout}"
        )
    return timeout


def resolve_workers(workers: Optional[int], name: str = "workers") -> int:
    """Resolve a ``workers`` knob: ``None`` consults the environment default.

    Zero and negative counts raise ``ValueError`` with an actionable
    message instead of crashing the pool (``--workers 0`` at the CLI lands
    here).
    """
    if workers is None:
        return default_workers()
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise TypeError(
            f"{name} must be an int or None, got {type(workers).__name__}"
        )
    if workers < 1:
        raise ValueError(
            f"{name} must be a positive integer (1 = serial), got {workers}"
        )
    return workers


@dataclass(frozen=True)
class Shard:
    """One half-open block ``[start, stop)`` of a sharded range."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise ValueError(
                f"shard must satisfy 0 <= start < stop, got [{self.start}, "
                f"{self.stop})"
            )

    @property
    def size(self) -> int:
        return self.stop - self.start


class ShardPlanner:
    """Partition ``n`` items into balanced, word-aligned blocks.

    Parameters
    ----------
    shard_size:
        Target items per shard.  ``None`` (default) derives one shard per
        worker (``ceil(n / workers)``); an explicit value fixes the block
        size (more blocks than workers is fine -- the pool load-balances).
        Either way the size is rounded up to a multiple of ``align``.
    align:
        Boundary multiple, default :data:`WORD_BITS` -- triples are packed
        64 per ``uint64`` word, so word-aligned shard starts keep per-shard
        bit-packed work off word seams.
    """

    __slots__ = ("_shard_size", "_align")

    def __init__(
        self, shard_size: Optional[int] = None, align: int = WORD_BITS
    ) -> None:
        if shard_size is not None:
            if isinstance(shard_size, bool) or not isinstance(shard_size, int):
                raise TypeError(
                    f"shard_size must be an int or None, got "
                    f"{type(shard_size).__name__}"
                )
            if shard_size < 1:
                raise ValueError(
                    f"shard_size must be a positive integer, got {shard_size}"
                )
        if align < 1:
            raise ValueError(f"align must be a positive integer, got {align}")
        self._shard_size = shard_size
        self._align = int(align)

    @property
    def shard_size(self) -> Optional[int]:
        return self._shard_size

    @property
    def align(self) -> int:
        return self._align

    def plan(self, n_items: int, workers: int = 1) -> list[Shard]:
        """Balanced shards covering ``[0, n_items)``, in range order.

        ``n_items == 0`` yields no shards; a ``shard_size`` larger than
        ``n_items`` (or a single worker with no explicit size) yields one
        shard covering everything.
        """
        if n_items < 0:
            raise ValueError(f"n_items must be non-negative, got {n_items}")
        if n_items == 0:
            return []
        if self._shard_size is None:
            if workers <= 1:
                return [Shard(0, n_items)]
            target = math.ceil(n_items / workers)
        else:
            target = self._shard_size
        size = max(self._align * math.ceil(target / self._align), self._align)
        return [
            Shard(start, min(start + size, n_items))
            for start in range(0, n_items, size)
        ]


class WorkerPool:
    """A reusable, lazily-created worker pool behind one ``map``.

    ``workers=1`` never creates an OS pool: every map runs inline on the
    calling thread, making the single-worker configuration the bitwise
    reference path.  The underlying executor is created on the first
    parallel dispatch and reused until :meth:`close` (serving processes
    dispatch through one pool for their lifetime).

    Lifecycle: the pool is a context manager, :meth:`close` is idempotent,
    and a ``weakref`` finalizer shuts the executor down if the pool is
    garbage-collected without an explicit close -- a fuser dropped without
    ``close()`` cannot leak executor threads.  Maps issued after
    :meth:`close` run inline (serial) instead of raising, so a concurrent
    holder of a retired pool degrades to serial execution, never to an
    error.

    The pool is picklable (for process-backend jobs whose arguments hold
    one): the live executor is dropped and lazily recreated on first use
    in the receiving process.
    """

    def __init__(
        self,
        workers: int = 1,
        backend: str = "thread",
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        map_timeout: Optional[float] = None,
    ) -> None:
        self._workers = resolve_workers(workers)
        self._backend = check_backend(backend)
        if isinstance(max_restarts, bool) or not isinstance(max_restarts, int):
            raise TypeError(
                f"max_restarts must be an int, got "
                f"{type(max_restarts).__name__}"
            )
        if max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        self._max_restarts = max_restarts
        self._map_timeout = resolve_map_timeout(map_timeout)
        self._lock = make_lock("WorkerPool._lock")
        # guarded-by: _lock
        self._executor: Optional[Executor] = None
        # guarded-by: _lock
        self._finalizer: Optional[weakref.finalize] = None
        # guarded-by: _lock
        self._closed = False
        # guarded-by: _lock -- supervision counters (see stats)
        self._restarts = 0
        # guarded-by: _lock
        self._timeouts = 0
        # guarded-by: _lock
        self._inline_fallbacks = 0

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (maps then fall back inline)."""
        return self._closed

    @property
    def max_restarts(self) -> int:
        return self._max_restarts

    @property
    def map_timeout(self) -> Optional[float]:
        return self._map_timeout

    @property
    def stats(self) -> dict:
        """Supervision counters plus static pool configuration (snapshot)."""
        with self._lock:
            return {
                "workers": self._workers,
                "backend": self._backend,
                "max_restarts": self._max_restarts,
                "map_timeout": self._map_timeout,
                "restarts": self._restarts,
                "timeouts": self._timeouts,
                "inline_fallbacks": self._inline_fallbacks,
                "closed": self._closed,
            }

    def _ensure_executor(self) -> Optional[Executor]:
        """The live executor, or ``None`` when the pool is closed.

        A map racing :meth:`close` must not lazily resurrect a pool nobody
        will ever shut down again, so post-close dispatch returns ``None``
        and the caller runs inline.
        """
        with self._lock:
            if self._closed:
                return None
            if self._executor is None:
                if self._backend == "process":
                    self._executor = ProcessPoolExecutor(
                        max_workers=self._workers
                    )
                else:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self._workers,
                        thread_name_prefix="repro-shard",
                    )
                # GC insurance: shut the executor down when the pool is
                # collected without an explicit close().
                self._finalizer = weakref.finalize(
                    self, _shutdown_executor, self._executor
                )
            return self._executor

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        """``[fn(x) for x in items]``, fanned across the pool, in order.

        Results preserve input order regardless of completion order; the
        first raised exception propagates to the caller.  On a closed pool
        the map runs inline (serial), so retiring a pool under a
        concurrent caller is always safe.

        Under ``REPRO_LOCK_CHECK=1`` a fan-out refuses to run while the
        calling thread holds a tracked component lock (unless that lock
        is declared ``allow_across_map``): blocking on worker completion
        inside a critical section is the nested-wait deadlock shape PR 4
        eliminated, and this assertion keeps it eliminated.  The inline
        paths are exempt -- they never wait on another thread.
        """
        items = list(items)
        if self._workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        assert_map_safe(
            f"WorkerPool.map (backend={self._backend!r}, "
            f"workers={self._workers})"
        )
        attempts = 0
        while True:
            executor = self._ensure_executor()
            if executor is None:
                return [fn(item) for item in items]
            try:
                return self._dispatch(executor, fn, items)
            except BrokenExecutor:
                # A worker died (killed process, failed initializer); the
                # executor is permanently poisoned.  Retire it and retry
                # the whole map on a fresh one.
                failure = "restarts"
            except FuturesTimeout:
                # The per-map watchdog fired: some job is hung (or an
                # injected delay outlived the budget).  The executor may
                # still be wedged on it -- retire without waiting.
                failure = "timeouts"
            except RuntimeError:
                # close() can land between the executor handoff above and
                # the submit ("cannot schedule new futures after
                # shutdown"); only that race is swallowed -- degrade to
                # inline execution.  (BrokenExecutor subclasses
                # RuntimeError, so supervision is handled above.)
                if not self._closed:
                    raise
                return [fn(item) for item in items]
            self._retire_executor(executor, failure)
            attempts += 1
            if attempts > self._max_restarts:
                # Out of restart budget: the final rung.  Inline serial
                # execution has no workers to lose and no watchdog to
                # trip, so the map still completes (fn's own errors
                # propagate -- supervision never masks those).
                with self._lock:
                    self._inline_fallbacks += 1
                return [fn(item) for item in items]

    def _dispatch(
        self, executor: Executor, fn: Callable[[_T], _R], items: "list[_T]"
    ) -> "list[_R]":
        """One supervised fan-out attempt on ``executor``.

        When a fault injector watches the worker site, every job is
        wrapped with a parent-minted fault token (the Nth-hit decision
        happens here, where the counters live; the child just performs
        it).  Hit counters advance per attempt, so a retried map meets a
        once-only rule already consumed -- which is what makes the retry
        succeed.
        """
        timeout = self._map_timeout
        injector = faults.active_injector()
        if injector is not None and injector.watches(faults.SITE_WORKER):
            jobs = [
                (injector.token(faults.SITE_WORKER), fn, item)
                for item in items
            ]
            return list(executor.map(faults.faulty_call, jobs,
                                     timeout=timeout))
        return list(executor.map(fn, items, timeout=timeout))

    def _retire_executor(self, executor: Executor, failure: str) -> None:
        """Drop a broken/hung executor so the next attempt rebuilds one.

        The executor is shut down without waiting (its workers may be
        dead or wedged) and detached from the GC finalizer; the matching
        supervision counter records why.
        """
        with self._lock:
            if failure == "timeouts":
                self._timeouts += 1
            else:
                self._restarts += 1
            if self._executor is not executor:
                # A concurrent map already retired it (or close() ran);
                # nothing further to detach.
                finalizer = None
            else:
                self._executor = None
                finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer.detach()
        executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the underlying executor down (idempotent).

        Subsequent maps run inline (serial) -- they never raise -- and the
        GC finalizer is detached because there is nothing left to reclaim.
        """
        with self._lock:
            executor, self._executor = self._executor, None
            finalizer, self._finalizer = self._finalizer, None
            self._closed = True
        if finalizer is not None:
            finalizer.detach()
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __getstate__(self) -> dict:
        return {
            "workers": self._workers,
            "backend": self._backend,
            "max_restarts": self._max_restarts,
            "map_timeout": self._map_timeout,
        }

    def __setstate__(self, state: dict) -> None:
        self._workers = state["workers"]
        self._backend = state["backend"]
        self._max_restarts = state.get("max_restarts", DEFAULT_MAX_RESTARTS)
        self._map_timeout = state.get("map_timeout")
        self._executor = None
        self._finalizer = None
        self._closed = False
        self._restarts = 0
        self._timeouts = 0
        self._inline_fallbacks = 0
        self._lock = make_lock("WorkerPool._lock")


class ShardedExecutor:
    """Shard planning plus a reusable worker pool, merged by concatenation.

    The dispatch object every parallel component holds: the fusers shard
    their pattern matrices through :meth:`shards` and fan per-shard jobs
    with :meth:`map`; the clustered fuser fans its per-cluster batch calls;
    the empirical joint model fans its batch-evaluation chunks.  Results
    always come back in submission order, so merging is a concatenation
    and scores stay bit-identical to the serial path.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        backend: str = "thread",
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        map_timeout: Optional[float] = None,
    ) -> None:
        self._pool = WorkerPool(
            resolve_workers(workers),
            backend,
            max_restarts=max_restarts,
            map_timeout=map_timeout,
        )
        self._planner = ShardPlanner(shard_size)

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def backend(self) -> str:
        return self._pool.backend

    @property
    def shard_size(self) -> Optional[int]:
        return self._planner.shard_size

    @property
    def closed(self) -> bool:
        """Whether the underlying pool has been closed."""
        return self._pool.closed

    @property
    def stats(self) -> dict:
        """The pool's supervision counters plus the shard configuration."""
        stats = self._pool.stats
        stats["shard_size"] = self._planner.shard_size
        return stats

    def shards(self, n_items: int) -> list[Shard]:
        """The planner's balanced word-aligned blocks for ``n_items``."""
        return self._planner.plan(n_items, self._pool.workers)

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        """Fan ``fn`` over ``items`` on the pool; results in input order."""
        return self._pool.map(fn, items)

    def map_shards(
        self, fn: Callable[[int, int], _R], n_items: int
    ) -> Optional[list[_R]]:
        """``fn(start, stop)`` per shard, in shard order.

        Returns ``None`` when the plan is a single shard (or empty) --
        callers then run their unsharded path, keeping the one-shard case
        free of dispatch overhead and byte-identical in cache keying to
        the serial configuration.  On the process backend ``fn`` must be
        picklable (module-level function or bound method of a picklable
        object).
        """
        shards = self.shards(n_items)
        if len(shards) <= 1:
            return None
        return self._pool.map(
            _range_call, [(fn, shard.start, shard.stop) for shard in shards]
        )

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        self._pool.close()

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __getstate__(self) -> dict:
        return {
            "pool": self._pool,
            "shard_size": self._planner.shard_size,
            "align": self._planner.align,
        }

    def __setstate__(self, state: dict) -> None:
        self._pool = state["pool"]
        self._planner = ShardPlanner(state["shard_size"], align=state["align"])


def make_executor(
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    backend: str = "thread",
) -> Optional[ShardedExecutor]:
    """Build a :class:`ShardedExecutor`, or ``None`` for the serial default.

    ``None`` is returned only for the fully-default configuration
    (one worker, no explicit shard size): components then skip dispatch
    entirely.  An explicit ``shard_size`` with ``workers=1`` still returns
    an executor -- its maps run inline, which is how the equivalence tests
    drive the shard path deterministically.
    """
    resolved = resolve_workers(workers)
    if resolved == 1 and shard_size is None:
        check_backend(backend)
        return None
    return ShardedExecutor(
        workers=resolved, shard_size=shard_size, backend=backend
    )
