"""Semi-supervised EM fusion (extension to Section 3.2).

The paper derives source quality from a fully-labelled training set.  When
labels are scarce, the same machinery supports an expectation-maximisation
loop, which the paper's related work (LTM, 3-Estimates) does implicitly:

- **E-step**: score every triple with PrecRec under the current quality
  estimates (Theorem 3.1), yielding a soft truth probability per triple.
- **M-step**: re-estimate every source's precision and recall against the
  soft labels (fractional counts), derive ``q_i`` by Theorem 3.5, and
  optionally update the prior ``alpha`` to the mean truth probability.

A handful of known labels can be pinned (`seed`) and act as the supervision
anchor; with no seed the loop is fully unsupervised and is initialised from
vote fractions.  This fuser is an *extension* -- it is not part of the
paper's evaluation, but it makes the library usable when no gold standard
exists, and the ablation benchmark compares it against the supervised
PrecRec upper bound.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.fusion import TruthFuser
from repro.core.observations import ObservationMatrix
from repro.util.probability import clamp_probability
from repro.util.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class EMDiagnostics:
    """Convergence record of one EM run."""

    iterations: int
    converged: bool
    final_change: float
    final_prior: float
    #: Was this run initialised from a previous generation's posteriors
    #: (:meth:`ExpectationMaximizationFuser.warm_start_from`)?
    warm_started: bool = False


class ExpectationMaximizationFuser(TruthFuser):
    """Unsupervised / semi-supervised PrecRec via EM.

    Parameters
    ----------
    prior:
        Initial ``alpha``.
    update_prior:
        When true the prior is re-estimated each iteration as the mean soft
        truth probability.
    max_iterations, tolerance:
        Stopping rule: stop when the max absolute probability change falls
        below ``tolerance`` or after ``max_iterations``.
    smoothing:
        Pseudo-count applied to the fractional precision/recall ratios; keeps
        early iterations (when soft labels are near-uniform) stable.
    seed_labels:
        Optional float array of shape ``(n_triples,)`` with values in
        ``[0, 1]`` and ``nan`` for unlabelled triples.  Labelled entries are
        clamped to their given value every iteration.
    """

    name = "PrecRec-EM"

    def __init__(
        self,
        prior: float = 0.5,
        update_prior: bool = True,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        smoothing: float = 0.5,
        seed_labels: Optional[np.ndarray] = None,
    ) -> None:
        check_fraction(prior, "prior")
        check_positive_int(max_iterations, "max_iterations")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        if smoothing < 0:
            raise ValueError(f"smoothing must be non-negative, got {smoothing}")
        self._prior = prior
        self._update_prior = update_prior
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._smoothing = smoothing
        self._seed = None if seed_labels is None else np.asarray(seed_labels, float)
        self._last_diagnostics: Optional[EMDiagnostics] = None
        # Warm-start state (see warm_start_from): an init overlay from a
        # previous generation's converged posteriors, plus bookkeeping for
        # the iterations-saved diagnostics.
        self._warm: Optional[np.ndarray] = None
        self._warm_baseline: Optional[int] = None
        self._warm_scores = 0
        self._warm_iterations_saved = 0
        self._last_posteriors: Optional[np.ndarray] = None
        # Per-score buffer workspace and diagnostics, thread-local so
        # concurrent ``score`` calls on one fuser (a multi-threaded
        # ScoringSession) never share scratch buffers and each thread
        # reads its own run's convergence record; unset outside a scoring
        # run (direct ``_m_step``/``_e_step`` calls then allocate fresh).
        self._tls = threading.local()

    def warm_start_from(
        self,
        probabilities: Optional[np.ndarray],
        baseline_iterations: Optional[int] = None,
    ) -> None:
        """Initialise future ``score`` runs from previous posteriors.

        The delta-refit path (``ScoringSession.refit_delta`` with an EM
        fuser) hands the retired generation's converged posteriors to the
        fresh fuser: ``score`` overlays them onto the vote-fraction
        initialisation (positionally, up to the shorter length when the
        matrix width changed) and then iterates under the *unchanged*
        convergence criterion.  EM's fixed point does not depend on the
        starting point for the basins these serving workloads stay in --
        the warm run lands on the cold fixed point (asserted within
        tolerance by the golden suites) in fewer iterations.

        ``baseline_iterations`` (typically the retired generation's
        iteration count) feeds the ``iterations_saved`` diagnostic.
        ``None`` clears the warm start.
        """
        if probabilities is None:
            self._warm = None
            self._warm_baseline = None
            return
        self._warm = np.asarray(probabilities, dtype=float).copy()
        self._warm_baseline = (
            None if baseline_iterations is None else int(baseline_iterations)
        )

    @property
    def last_posteriors(self) -> Optional[np.ndarray]:
        """The most recent ``score`` run's converged posteriors.

        Read-only snapshot (any thread's latest run) -- the hand-off a
        session passes to the next generation's :meth:`warm_start_from`.
        """
        return self._last_posteriors

    @property
    def warm_start_stats(self) -> dict:
        """Warm-start diagnostics for ``cache_stats()``/serving reports."""
        return {
            "warm_scores": self._warm_scores,
            "iterations_saved": self._warm_iterations_saved,
            "baseline_iterations": self._warm_baseline,
        }

    @property
    def diagnostics(self) -> Optional[EMDiagnostics]:
        """Convergence record of this thread's last ``score`` run.

        Falls back to the most recent run from any thread when the
        calling thread has not scored (e.g. a monitor inspecting a
        serving fuser).
        """
        local = getattr(self._tls, "diagnostics", None)
        return local if local is not None else self._last_diagnostics

    @diagnostics.setter
    def diagnostics(self, value: Optional[EMDiagnostics]) -> None:
        self._tls.diagnostics = value
        self._last_diagnostics = value

    @property
    def _workspace(self) -> Optional["_Workspace"]:
        return getattr(self._tls, "workspace", None)

    @_workspace.setter
    def _workspace(self, value: Optional["_Workspace"]) -> None:
        self._tls.workspace = value

    def __getstate__(self) -> dict:
        # Thread-local storage is process-local; a pickled fuser starts
        # with fresh (empty) per-thread state.
        state = self.__dict__.copy()
        state.pop("_tls", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._tls = threading.local()

    def score(self, observations: ObservationMatrix) -> np.ndarray:
        provides = observations.provides.astype(float)
        coverage = observations.coverage.astype(float)
        # Every loop invariant is computed exactly once: the silent-source
        # matrix, the per-source provided counts, and their smoothed
        # denominator never change across EM iterations.
        silent = coverage * (1.0 - provides)
        n_triples = observations.n_triples
        n_sources = observations.n_sources

        seed_mask = None
        seed_values = None
        if self._seed is not None:
            if self._seed.shape != (n_triples,):
                raise ValueError(
                    f"seed_labels shape {self._seed.shape} != ({n_triples},)"
                )
            seed_mask = ~np.isnan(self._seed)
            seed_values = np.clip(self._seed[seed_mask], 0.0, 1.0)

        # Initialise with vote fractions among covering sources.
        covering = np.maximum(coverage.sum(axis=0), 1.0)
        probabilities = provides.sum(axis=0) / covering
        probabilities = np.clip(probabilities, 0.05, 0.95)
        # Warm-start overlay: resume from a previous generation's
        # posteriors where available (positional, truncated to the shorter
        # width on matrix growth/shrink); seeds still win below.
        warm = self._warm
        warm_applied = False
        if warm is not None and warm.size and n_triples:
            shared = min(warm.size, n_triples)
            probabilities[:shared] = warm[:shared]
            warm_applied = True
        if seed_mask is not None:
            probabilities[seed_mask] = seed_values

        prior = self._prior
        if seed_mask is not None and bool(seed_mask.all()):
            # Every triple is pinned: the E-step assignment restores the
            # seed values each iteration, so no update can ever change the
            # probabilities -- return them without running the loop.  The
            # prior still takes its one update (the loop used to apply it
            # before detecting convergence), so diagnostics.final_prior
            # matches the pre-exit behaviour.
            if self._update_prior:
                prior = clamp_probability(
                    float(probabilities.mean()), floor=1e-3
                )
            self.diagnostics = EMDiagnostics(
                iterations=0,
                converged=True,
                final_change=0.0,
                final_prior=prior,
            )
            self._last_posteriors = probabilities.copy()
            return probabilities

        # Preallocated work buffers, reused across iterations (see
        # :class:`_Workspace`); the per-iteration M- and E-steps replay the
        # original numpy expressions as the same ufunc sequences with
        # ``out=`` targets, so probabilities are bit-identical to the
        # allocate-per-iteration reference.
        workspace = _Workspace(n_sources, n_triples, provides, self._smoothing)
        self._workspace = workspace
        try:
            change = np.inf
            iteration = 0
            for iteration in range(1, self._max_iterations + 1):
                recall, fpr = self._m_step(
                    provides, coverage, probabilities, prior
                )
                updated = self._e_step(provides, silent, recall, fpr, prior)
                if seed_mask is not None:
                    updated[seed_mask] = seed_values
                np.subtract(updated, probabilities, out=workspace.triple_buf)
                np.abs(workspace.triple_buf, out=workspace.triple_buf)
                change = float(np.max(workspace.triple_buf))
                # Ping-pong the two probability buffers: the retired one
                # becomes the next E-step's output target.
                workspace.out_probabilities = probabilities
                probabilities = updated
                if self._update_prior:
                    prior = clamp_probability(
                        float(probabilities.mean()), floor=1e-3
                    )
                if change < self._tolerance:
                    break
        finally:
            self._workspace = None
        self.diagnostics = EMDiagnostics(
            iterations=iteration,
            converged=change < self._tolerance,
            final_change=change,
            final_prior=prior,
            warm_started=warm_applied,
        )
        if warm_applied:
            # Diagnostics only (plain increments, last-writer-wins under
            # threads): how many iterations the warm init saved vs the
            # baseline generation's cold run.
            self._warm_scores += 1
            if self._warm_baseline is not None:
                self._warm_iterations_saved += max(
                    self._warm_baseline - iteration, 0
                )
        self._last_posteriors = probabilities.copy()
        return probabilities

    def _m_step(
        self,
        provides: np.ndarray,
        coverage: np.ndarray,
        probabilities: np.ndarray,
        prior: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fractional-count quality estimates from soft labels.

        Inside a ``score`` run the returned arrays are the workspace's
        reusable buffers (overwritten on the next iteration); called
        standalone it allocates.  Either way the ufunc sequence replays
        the original expressions, so values are bit-identical.
        """
        ws = self._workspace or _Workspace(
            provides.shape[0], provides.shape[1], provides, self._smoothing
        )
        s = self._smoothing
        precision, recall, fpr = ws.precision, ws.recall, ws.fpr
        np.dot(provides, probabilities, out=ws.provided_true)
        np.dot(coverage, probabilities, out=ws.scope_buf)
        np.add(ws.provided_true, s, out=precision)
        np.divide(precision, ws.provided_den, out=precision)
        np.add(ws.scope_buf, 2.0 * s, out=ws.scope_buf)
        np.add(ws.provided_true, s, out=recall)
        np.divide(recall, ws.scope_buf, out=recall)
        np.clip(precision, 1e-6, 1.0 - 1e-6, out=precision)
        np.clip(recall, 1e-6, 1.0 - 1e-6, out=recall)
        # Theorem 3.5, vectorised, clipped to a valid rate.
        np.subtract(1.0, precision, out=fpr)
        np.multiply(prior / (1.0 - prior), fpr, out=fpr)
        np.divide(fpr, precision, out=fpr)
        np.multiply(fpr, recall, out=fpr)
        np.clip(fpr, 1e-9, 1.0 - 1e-6, out=fpr)
        return recall, fpr

    def _e_step(
        self,
        provides: np.ndarray,
        silent: np.ndarray,
        recall: np.ndarray,
        fpr: np.ndarray,
        prior: float,
    ) -> np.ndarray:
        """Vectorised Theorem 3.1 in log space (buffer-reusing; see above)."""
        ws = self._workspace or _Workspace(
            provides.shape[0], provides.shape[1], provides, self._smoothing
        )
        z = ws.z
        np.log(recall, out=ws.log_provide)
        np.log(fpr, out=ws.source_buf)
        np.subtract(ws.log_provide, ws.source_buf, out=ws.log_provide)
        np.negative(recall, out=ws.log_silent)
        np.log1p(ws.log_silent, out=ws.log_silent)
        np.negative(fpr, out=ws.source_buf)
        np.log1p(ws.source_buf, out=ws.source_buf)
        np.subtract(ws.log_silent, ws.source_buf, out=ws.log_silent)
        np.dot(ws.log_provide, provides, out=z)
        np.dot(ws.log_silent, silent, out=ws.triple_buf)
        np.add(z, ws.triple_buf, out=z)
        np.add(np.log(prior) - np.log1p(-prior), z, out=z)
        np.clip(z, -500, 500, out=z)
        np.negative(z, out=z)
        np.exp(z, out=z)
        np.add(1.0, z, out=z)
        # The output buffer now belongs to the caller; score swaps the
        # retired probability buffer back into ``out_probabilities`` after
        # every iteration, so consecutive E-steps never alias.
        updated = ws.out_probabilities
        np.divide(1.0, z, out=updated)
        return updated


class _Workspace:
    """Reusable EM buffers for one ``score`` run.

    All loop invariants (``provided`` counts and their smoothed
    denominator) are computed once at construction; everything else is an
    uninitialised scratch buffer the M-/E-steps overwrite each iteration
    with the exact ufunc sequence of the original allocate-per-iteration
    code.
    """

    __slots__ = (
        "provided_true", "scope_buf", "precision", "recall", "fpr",
        "source_buf", "log_provide", "log_silent", "z", "triple_buf",
        "out_probabilities", "provided_den",
    )

    def __init__(
        self,
        n_sources: int,
        n_triples: int,
        provides: np.ndarray,
        smoothing: float,
    ) -> None:
        self.provided_den = provides.sum(axis=1) + 2.0 * smoothing
        self.provided_true = np.empty(n_sources)
        self.scope_buf = np.empty(n_sources)
        self.precision = np.empty(n_sources)
        self.recall = np.empty(n_sources)
        self.fpr = np.empty(n_sources)
        self.source_buf = np.empty(n_sources)
        self.log_provide = np.empty(n_sources)
        self.log_silent = np.empty(n_sources)
        self.z = np.empty(n_triples)
        self.triple_buf = np.empty(n_triples)
        #: The E-step's output target; ``score`` ping-pongs the retired
        #: probability buffer back in after each iteration.
        self.out_probabilities = np.empty(n_triples)
