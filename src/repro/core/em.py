"""Semi-supervised EM fusion (extension to Section 3.2).

The paper derives source quality from a fully-labelled training set.  When
labels are scarce, the same machinery supports an expectation-maximisation
loop, which the paper's related work (LTM, 3-Estimates) does implicitly:

- **E-step**: score every triple with PrecRec under the current quality
  estimates (Theorem 3.1), yielding a soft truth probability per triple.
- **M-step**: re-estimate every source's precision and recall against the
  soft labels (fractional counts), derive ``q_i`` by Theorem 3.5, and
  optionally update the prior ``alpha`` to the mean truth probability.

A handful of known labels can be pinned (`seed`) and act as the supervision
anchor; with no seed the loop is fully unsupervised and is initialised from
vote fractions.  This fuser is an *extension* -- it is not part of the
paper's evaluation, but it makes the library usable when no gold standard
exists, and the ablation benchmark compares it against the supervised
PrecRec upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.fusion import TruthFuser
from repro.core.observations import ObservationMatrix
from repro.util.probability import clamp_probability
from repro.util.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class EMDiagnostics:
    """Convergence record of one EM run."""

    iterations: int
    converged: bool
    final_change: float
    final_prior: float


class ExpectationMaximizationFuser(TruthFuser):
    """Unsupervised / semi-supervised PrecRec via EM.

    Parameters
    ----------
    prior:
        Initial ``alpha``.
    update_prior:
        When true the prior is re-estimated each iteration as the mean soft
        truth probability.
    max_iterations, tolerance:
        Stopping rule: stop when the max absolute probability change falls
        below ``tolerance`` or after ``max_iterations``.
    smoothing:
        Pseudo-count applied to the fractional precision/recall ratios; keeps
        early iterations (when soft labels are near-uniform) stable.
    seed_labels:
        Optional float array of shape ``(n_triples,)`` with values in
        ``[0, 1]`` and ``nan`` for unlabelled triples.  Labelled entries are
        clamped to their given value every iteration.
    """

    name = "PrecRec-EM"

    def __init__(
        self,
        prior: float = 0.5,
        update_prior: bool = True,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        smoothing: float = 0.5,
        seed_labels: Optional[np.ndarray] = None,
    ) -> None:
        check_fraction(prior, "prior")
        check_positive_int(max_iterations, "max_iterations")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        if smoothing < 0:
            raise ValueError(f"smoothing must be non-negative, got {smoothing}")
        self._prior = prior
        self._update_prior = update_prior
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._smoothing = smoothing
        self._seed = None if seed_labels is None else np.asarray(seed_labels, float)
        self.diagnostics: Optional[EMDiagnostics] = None

    def score(self, observations: ObservationMatrix) -> np.ndarray:
        provides = observations.provides.astype(float)
        coverage = observations.coverage.astype(float)
        silent = coverage * (1.0 - provides)
        n_triples = observations.n_triples

        seed_mask = None
        seed_values = None
        if self._seed is not None:
            if self._seed.shape != (n_triples,):
                raise ValueError(
                    f"seed_labels shape {self._seed.shape} != ({n_triples},)"
                )
            seed_mask = ~np.isnan(self._seed)
            seed_values = np.clip(self._seed[seed_mask], 0.0, 1.0)

        # Initialise with vote fractions among covering sources.
        covering = np.maximum(coverage.sum(axis=0), 1.0)
        probabilities = provides.sum(axis=0) / covering
        probabilities = np.clip(probabilities, 0.05, 0.95)
        if seed_mask is not None:
            probabilities[seed_mask] = seed_values

        prior = self._prior
        change = np.inf
        iteration = 0
        for iteration in range(1, self._max_iterations + 1):
            recall, fpr = self._m_step(provides, coverage, probabilities, prior)
            updated = self._e_step(provides, silent, recall, fpr, prior)
            if seed_mask is not None:
                updated[seed_mask] = seed_values
            change = float(np.max(np.abs(updated - probabilities)))
            probabilities = updated
            if self._update_prior:
                prior = clamp_probability(float(probabilities.mean()), floor=1e-3)
            if change < self._tolerance:
                break
        self.diagnostics = EMDiagnostics(
            iterations=iteration,
            converged=change < self._tolerance,
            final_change=change,
            final_prior=prior,
        )
        return probabilities

    def _m_step(
        self,
        provides: np.ndarray,
        coverage: np.ndarray,
        probabilities: np.ndarray,
        prior: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fractional-count quality estimates from soft labels."""
        s = self._smoothing
        provided_true = provides @ probabilities
        provided = provides.sum(axis=1)
        in_scope_true = coverage @ probabilities
        precision = (provided_true + s) / (provided + 2.0 * s)
        recall = (provided_true + s) / (in_scope_true + 2.0 * s)
        precision = np.clip(precision, 1e-6, 1.0 - 1e-6)
        recall = np.clip(recall, 1e-6, 1.0 - 1e-6)
        # Theorem 3.5, vectorised, clipped to a valid rate.
        fpr = prior / (1.0 - prior) * (1.0 - precision) / precision * recall
        fpr = np.clip(fpr, 1e-9, 1.0 - 1e-6)
        return recall, fpr

    def _e_step(
        self,
        provides: np.ndarray,
        silent: np.ndarray,
        recall: np.ndarray,
        fpr: np.ndarray,
        prior: float,
    ) -> np.ndarray:
        """Vectorised Theorem 3.1 in log space."""
        log_provide = np.log(recall) - np.log(fpr)
        log_silent = np.log1p(-recall) - np.log1p(-fpr)
        log_mu = log_provide @ provides + log_silent @ silent
        z = np.log(prior) - np.log1p(-prior) + log_mu
        return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
