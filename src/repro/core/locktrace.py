"""Runtime lock-order tracing: deadlock-hazard detection for serving.

The threaded serving stack (PR 4) rests on two prose invariants that no
test could previously *watch* being upheld:

1. **Lock ordering is acyclic.**  Every component lock (plan cache, joint
   cache, session refit/count locks, micro-batcher queue lock, worker-pool
   state lock) may be held while acquiring certain others -- e.g. a refit
   holds the session's refit lock while invalidating the retired fuser's
   plan cache.  As long as the "held while acquiring" relation over lock
   *names* stays acyclic, no schedule of threads can deadlock on them.

2. **No component lock is held across a pool fan-out.**  ``WorkerPool.map``
   blocks the calling thread until every worker finishes; if the caller
   holds a lock a worker might need, the pool nests a wait inside a
   critical section -- the deadlock shape PR 4 avoided by giving every
   component its own pool.  The one deliberate exception is the session's
   coarse refit lock, which serialises whole generation builds (and those
   builds legitimately fan out on the *new* generation's private pools).

This module turns both invariants into runtime checks.  Set
``REPRO_LOCK_CHECK=1`` and every lock built through :func:`make_lock`
becomes a :class:`TrackedLock`: acquisitions record per-thread held-lock
stacks into a process-wide lock-order graph, :func:`detected_cycles`
reports any cycle in that graph (a potential deadlock even if no run has
hit it yet), and ``WorkerPool.map`` refuses to fan out while a tracked
lock is held (unless the lock was declared ``allow_across_map``).  With
the variable unset (the default), :func:`make_lock` returns a plain
``threading.Lock`` -- zero overhead, byte-identical behaviour.

The checker is a *tracer*, not a scheduler: it observes orders that real
executions exhibit, so its guarantees are as good as the workload that ran
under it.  CI re-runs the concurrency-focused test modules with
``REPRO_LOCK_CHECK=1`` and asserts the cycle set stays empty
(``tests/test_locktrace.py``).
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Iterator, Optional, Union

#: Environment variable that activates lock tracking (``1``/``true``/...).
LOCK_CHECK_ENV_VAR = "REPRO_LOCK_CHECK"

#: Frames kept in the acquisition-stack samples attached to graph edges.
_STACK_DEPTH = 6


def lock_check_enabled() -> bool:
    """Whether ``REPRO_LOCK_CHECK`` asks for tracked locks."""
    raw = os.environ.get(LOCK_CHECK_ENV_VAR, "").strip().lower()
    return raw not in ("", "0", "false", "off", "no")


class LockOrderError(RuntimeError):
    """A lock-discipline violation detected at runtime.

    Raised by :func:`assert_map_safe` when a tracked lock (not declared
    ``allow_across_map``) is held on entry to a worker-pool fan-out: the
    calling thread would block on worker completion inside a critical
    section, the nested-wait deadlock shape.
    """


def _acquisition_site() -> str:
    """A short formatted stack sample for hazard/edge reports."""
    frames = traceback.extract_stack(limit=_STACK_DEPTH + 2)[:-2]
    return " <- ".join(
        f"{frame.name}:{frame.lineno}" for frame in reversed(frames)
    )


class _LockRegistry:
    """Process-wide lock-order graph plus per-thread held-lock stacks.

    Nodes are lock *names* (component-level, e.g.
    ``"CompiledPlanCache._lock"``), so every instance of a component class
    aggregates into one node and an ordering inversion between *any* two
    instances surfaces as a cycle.  Edges ``(held, acquired)`` mean "some
    thread acquired ``acquired`` while holding ``held``"; each edge keeps
    an occurrence count and one sample acquisition site.  Re-entrant
    re-acquisition of the *same instance* records no edge (that is what
    ``reentrant=True`` locks are for); two distinct instances sharing a
    name do record a self-edge, which is a genuine ordering hazard.
    """

    def __init__(self) -> None:
        # The registry is a never-pickled process singleton; a plain lock
        # (not a TrackedLock -- the registry cannot trace itself) is fine.
        self._lock = threading.Lock()  # reprolint: allow[REP002]
        self._tls = threading.local()
        # guarded-by: _lock
        self._edges: dict[tuple[str, str], dict] = {}
        # guarded-by: _lock
        self._hazards: list[dict] = []

    # -- per-thread held stack ----------------------------------------

    def _stack(self) -> list["TrackedLock"]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def held(self) -> tuple["TrackedLock", ...]:
        """The tracked locks the *calling thread* currently holds."""
        return tuple(self._stack())

    def note_acquire(self, lock: "TrackedLock") -> None:
        """Record edges from every held lock, then push ``lock``.

        Called *before* the underlying acquire blocks, so an ordering that
        would deadlock still lands in the graph (the cycle report must not
        depend on the deadlock winning the race).
        """
        stack = self._stack()
        if stack:
            site = _acquisition_site()
            with self._lock:
                for held in stack:
                    if held is lock:
                        continue  # re-entrant same-instance acquire
                    key = (held.name, lock.name)
                    entry = self._edges.get(key)
                    if entry is None:
                        self._edges[key] = {"count": 1, "site": site}
                    else:
                        entry["count"] += 1

    def note_acquired(self, lock: "TrackedLock") -> None:
        self._stack().append(lock)

    def note_release(self, lock: "TrackedLock") -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return

    # -- hazards -------------------------------------------------------

    def note_map_hazard(self, context: str, held: list["TrackedLock"]) -> None:
        with self._lock:
            self._hazards.append(
                {
                    "context": context,
                    "held": [lock.name for lock in held],
                    "site": _acquisition_site(),
                }
            )

    # -- reporting -----------------------------------------------------

    def edges(self) -> dict[tuple[str, str], dict]:
        with self._lock:
            return {key: dict(value) for key, value in self._edges.items()}

    def hazards(self) -> list[dict]:
        with self._lock:
            return [dict(entry) for entry in self._hazards]

    def cycles(self) -> list[list[str]]:
        """Every elementary ordering cycle currently in the graph.

        Strongly connected components of the name-level digraph: an SCC
        with more than one node -- or a node with a self-edge -- admits a
        thread schedule in which two threads wait on each other.  Returned
        as sorted name lists, deterministically ordered.
        """
        with self._lock:
            edge_keys = list(self._edges)
        graph: dict[str, set[str]] = {}
        for src, dst in edge_keys:
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        sccs = _strongly_connected(graph)
        cycles = [sorted(component) for component in sccs if len(component) > 1]
        for src, dst in edge_keys:
            if src == dst:
                cycles.append([src])
        return sorted(cycles)

    def report(self) -> dict:
        """Graph, cycles, and hazards in one serialisable snapshot."""
        return {
            "enabled": lock_check_enabled(),
            "edges": {
                f"{src} -> {dst}": value
                for (src, dst), value in sorted(self.edges().items())
            },
            "cycles": self.cycles(),
            "hazards": self.hazards(),
        }

    def reset(self) -> None:
        """Drop all recorded edges and hazards (tests only).

        Per-thread held stacks are left alone: locks currently held by
        live threads must keep unwinding correctly through release.
        """
        with self._lock:
            self._edges.clear()
            self._hazards.clear()


def _strongly_connected(graph: dict[str, set[str]]) -> list[list[str]]:
    """Iterative Tarjan SCC over a small name-level digraph."""
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[list[str]] = []
    counter = 0
    for root in sorted(graph):
        if root in index_of:
            continue
        work: list[tuple[str, Iterator[str]]] = [(root, iter(sorted(graph[root])))]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index_of:
                    index_of[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result


# The process-wide registry: one lock-order graph per process, by design --
# the graph aggregates orderings across every component instance, which is
# exactly what makes cross-instance inversions visible.
_REGISTRY = _LockRegistry()  # reprolint: allow[REP004]


class TrackedLock:
    """A ``threading.Lock``/``RLock`` that records acquisition order.

    Drop-in for the plain lock in every ``with``/``acquire``/``release``
    use.  ``name`` should identify the component attribute
    (``"ClassName._lock"``); all instances sharing a name aggregate into
    one lock-order graph node.  ``allow_across_map=True`` marks a lock
    that is *deliberately* held across worker-pool fan-outs (the session
    refit lock: it serialises generation builds, and pool workers never
    take it) -- every other tracked lock trips :func:`assert_map_safe`.
    """

    __slots__ = ("name", "allow_across_map", "_inner")

    def __init__(
        self,
        name: str,
        reentrant: bool = False,
        allow_across_map: bool = False,
    ) -> None:
        self.name = str(name)
        self.allow_across_map = bool(allow_across_map)
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _REGISTRY.note_acquire(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _REGISTRY.note_acquired(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        _REGISTRY.note_release(self)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r})"

    def __getstate__(self) -> dict:
        # Lock state is process-local; a pickled tracked lock re-arms
        # unlocked in the receiving process, like the plain locks the
        # cache/pool __getstate__ implementations drop and rebuild.
        return {
            "name": self.name,
            "allow_across_map": self.allow_across_map,
            "reentrant": isinstance(
                self._inner, type(threading.RLock())
            ),
        }

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.allow_across_map = state["allow_across_map"]
        self._inner = (
            threading.RLock() if state["reentrant"] else threading.Lock()
        )


LockLike = Union[threading.Lock, TrackedLock]


def make_lock(
    name: str,
    reentrant: bool = False,
    allow_across_map: bool = False,
) -> LockLike:
    """A component lock: plain by default, tracked under lock checking.

    The single constructor every core component routes its locks through.
    With ``REPRO_LOCK_CHECK`` unset this returns a plain
    ``threading.Lock`` (or ``RLock``) -- no wrapper, no overhead; with it
    set, a :class:`TrackedLock` that feeds the process lock-order graph.
    """
    if lock_check_enabled():
        return TrackedLock(
            name, reentrant=reentrant, allow_across_map=allow_across_map
        )
    if reentrant:
        return threading.RLock()  # type: ignore[return-value]
    return threading.Lock()


def held_tracked_locks() -> tuple[TrackedLock, ...]:
    """The tracked locks held by the calling thread (empty when disabled)."""
    return _REGISTRY.held()


def assert_map_safe(context: str) -> None:
    """Raise :class:`LockOrderError` if a strict tracked lock is held.

    Called by ``WorkerPool.map`` immediately before fanning work out to
    worker threads/processes.  Holding a component lock there nests the
    pool wait inside a critical section -- if any worker (now or after a
    refactor) needs that lock, the serving process deadlocks.  Locks
    declared ``allow_across_map`` are exempt; everything else fails fast
    with the lock names in the message.  No-overhead when tracking is
    disabled: no tracked locks exist, so the held stack is always empty.
    """
    held = [
        lock for lock in _REGISTRY.held() if not lock.allow_across_map
    ]
    if not held:
        return
    _REGISTRY.note_map_hazard(context, held)
    names = ", ".join(lock.name for lock in held)
    raise LockOrderError(
        f"tracked lock(s) held on entry to {context}: [{names}] -- a "
        "worker-pool fan-out must not run inside a critical section "
        "(nested-wait deadlock hazard); release the lock before "
        "dispatching, or declare it allow_across_map if pool workers can "
        "provably never acquire it"
    )


def detected_cycles() -> list[list[str]]:
    """Cycles in the recorded lock-order graph (empty = no deadlock risk
    observed among tracked acquisitions so far)."""
    return _REGISTRY.cycles()


def lock_order_report() -> dict:
    """Snapshot of the lock-order graph, cycle set, and hazard log."""
    return _REGISTRY.report()


def map_hazards() -> list[dict]:
    """Recorded held-lock-across-fan-out hazards (see :func:`assert_map_safe`)."""
    return _REGISTRY.hazards()


def reset_lock_tracking() -> None:
    """Clear recorded edges and hazards (test isolation helper)."""
    _REGISTRY.reset()


__all__ = [
    "LOCK_CHECK_ENV_VAR",
    "LockOrderError",
    "TrackedLock",
    "assert_map_safe",
    "detected_cycles",
    "held_tracked_locks",
    "lock_check_enabled",
    "lock_order_report",
    "make_lock",
    "map_hazards",
    "reset_lock_tracking",
]
