"""PrecRec: Bayesian fusion of independent sources (Section 3, Theorem 3.1).

Under source independence the likelihood ratio factors per source:

    mu = prod_{Si in St} r_i / q_i * prod_{Si in St-bar} (1 - r_i) / (1 - q_i)

and the posterior is ``Pr(t | Ot) = 1 / (1 + (1 - a)/a * 1/mu)``.  A *good*
source (``r_i > q_i``) pushes the probability up when it provides the triple
and down when it stays silent (Proposition 3.2).

The implementation works in log space so that hundreds of sources cannot
overflow the ratio, and clamps each rate away from {0, 1} so a single
degenerate estimate cannot produce an infinite log-odds swing.  Because the
ratio factorises, the vectorized engine evaluates *every* distinct pattern
with two matrix-vector products (see :meth:`PrecRecFuser.pattern_mu_batch`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.fusion import DEFAULT_MU_CACHE_ENTRIES, ModelBasedFuser
from repro.core.joint import JointQualityModel
from repro.core.patterns import PatternSet
from repro.util.probability import clamp_probability


class PrecRecFuser(ModelBasedFuser):
    """The paper's PRECREC method (Theorem 3.1).

    Only the singleton parameters ``(r_i, q_i)`` of the quality model are
    consulted; any joint information the model carries is ignored, which is
    precisely the independence assumption.

    Parameters
    ----------
    model:
        Quality model supplying per-source recall and false-positive rate
        plus the prior ``alpha``.
    decision_prior:
        Optional override of the ``alpha`` used in the posterior formula
        (the paper's Section 5 protocol fixes it at 0.5).
    engine:
        ``"vectorized"`` (default) or ``"legacy"`` -- see
        :class:`repro.core.fusion.ModelBasedFuser`.
    max_cache_entries:
        Cap on the per-pattern memo used by the per-pattern scoring paths.
    """

    name = "PrecRec"

    def __init__(
        self,
        model: JointQualityModel,
        decision_prior: float | None = None,
        engine: str = "vectorized",
        max_cache_entries: int = DEFAULT_MU_CACHE_ENTRIES,
        workers: int | None = None,
        shard_size: int | None = None,
        parallel_backend: str = "thread",
    ) -> None:
        # The workers/shard_size knobs are accepted for API uniformity
        # (make_fuser forwards them to every model-based fuser); PrecRec's
        # batch path is two matrix-vector products, which numpy already
        # saturates, so no sharded dispatch is wired here.
        super().__init__(
            model,
            decision_prior=decision_prior,
            engine=engine,
            max_cache_entries=max_cache_entries,
            workers=workers,
            shard_size=shard_size,
            parallel_backend=parallel_backend,
        )
        # Pre-compute each source's two log-contributions once; scoring a
        # pattern is then a sum of lookups (or, batched, a matrix product).
        self._log_provide: list[float] = []
        self._log_silent: list[float] = []
        for i in range(model.n_sources):
            r = clamp_probability(model.recall(i))
            q = clamp_probability(model.fpr(i))
            self._log_provide.append(math.log(r) - math.log(q))
            self._log_silent.append(math.log1p(-r) - math.log1p(-q))
        self._log_provide_vec = np.asarray(self._log_provide, dtype=float)
        self._log_silent_vec = np.asarray(self._log_silent, dtype=float)

    def pattern_mu(self, providers: frozenset[int], silent: frozenset[int]) -> float:
        return math.exp(self.pattern_log_mu(providers, silent))

    def pattern_log_mu(
        self, providers: frozenset[int], silent: frozenset[int]
    ) -> float:
        """``log mu`` -- exposed for tests and for very large source sets."""
        total = 0.0
        for i in providers:
            total += self._log_provide[i]
        for i in silent:
            total += self._log_silent[i]
        return total

    def pattern_mu_batch(self, patterns: PatternSet) -> np.ndarray:
        """All pattern ``mu`` values via two matrix-vector products."""
        log_mu = (
            patterns.provider_matrix @ self._log_provide_vec
            + patterns.silent_matrix @ self._log_silent_vec
        )
        with np.errstate(over="ignore"):
            return np.exp(log_mu)
