"""Joint source quality and correlation factors (Sections 2.2 and 4.2).

Correlation between sources is captured non-parametrically by the *joint*
precision and recall of source subsets:

    p_{S*} = Pr(t | S* |= t)        joint precision     (Eq. 3)
    r_{S*} = Pr(S* |= t | t)        joint recall        (Eq. 4)

with the joint false-positive rate ``q_{S*}`` derived from ``p_{S*}`` and
``r_{S*}`` by the same Theorem 3.5 formula used for single sources.  From
these the paper defines correlation factors

    C_{S*}  = r_{S*} / prod_i r_i   (Eq. 16; >1 positive, <1 negative)
    C!_{S*} = q_{S*} / prod_i q_i   (Eq. 17)

and the per-source *aggressive* factors over a universe ``S``

    C+_i = r_S / (r_i * r_{S \\ i})  (Eq. 14)
    C-_i = q_S / (q_i * q_{S \\ i})  (Eq. 15)

This module provides two implementations behind one interface:

- :class:`EmpiricalJointModel` measures every joint parameter from labelled
  training data (with optional Laplace smoothing), memoising by subset;
- :class:`ExplicitJointModel` serves parameters supplied directly (used by
  the paper's worked examples and by tests), falling back to independence
  products for unspecified subsets.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.core.bitset import pack_bool_vector, popcount, popcount_rows
from repro.core.observations import ObservationMatrix
from repro.core.locktrace import make_lock
from repro.core.parallel import make_executor

if TYPE_CHECKING:  # deltas imports joint at runtime; annotation-only here
    from repro.core.deltas import WordDiff
from repro.core.quality import (
    SourceQuality,
    derive_false_positive_rate,
    estimate_source_quality,
    quality_from_counts,
)
from repro.util.probability import safe_divide
from repro.util.validation import check_engine, check_fraction

SubsetKey = frozenset[int]

#: Rows per chunk in :meth:`EmpiricalJointModel.joint_params_batch` --
#: bounds the batched AND accumulator at a few tens of MB even when a fuser
#: asks for hundreds of thousands of subset unions over a wide matrix.
_BATCH_CHUNK = 32_768

#: Above this dirty-*word* fraction :meth:`EmpiricalJointModel.refit_delta`
#: falls back to an exact recount (a cold model build): subtract/add over
#: nearly every word costs two passes where the recount costs one, and the
#: carried caches are mostly invalidated anyway.
DEFAULT_REFIT_CHURN_FRACTION = 0.75


def _gather_words(words: np.ndarray, word_ids: np.ndarray) -> np.ndarray:
    """Select ``word_ids`` columns of a packed array, zero beyond its width.

    The word diff is computed over the *padded* common width of two
    generations; a word id past this array's real width corresponds to
    pure padding and contributes an all-zero word (``pack_bool_rows``
    zero-pads, so this matches what a physically padded array would hold).
    """
    out = np.zeros(words.shape[:-1] + (word_ids.size,), dtype=np.uint64)
    in_range = word_ids < words.shape[-1]
    if in_range.any():
        out[..., in_range] = words[..., word_ids[in_range]]
    return out


class _JointCounts:
    """Updatable integer sufficient statistics of one model generation.

    Every parameter the empirical model serves is a pure float function of
    these exact integer counts, which is what makes the delta-refit path
    bit-identical to a cold fit: ``refit_delta`` transports the integers
    with popcount add/subtract over dirty words only, then re-derives the
    floats through the same shared code paths
    (:func:`~repro.core.quality.quality_from_counts`,
    :meth:`EmpiricalJointModel._params_from_counts`) a cold build uses.

    The per-source arrays are always populated; the per-pair arrays are
    built lazily by the first :meth:`EmpiricalJointModel.pair_joint_params`
    call (``None`` until then) and the coverage pair is kept only under
    partial coverage.
    """

    __slots__ = (
        "src_provided",
        "src_provided_true",
        "src_in_scope_true",
        "pair_provided_true",
        "pair_provided_false",
        "pair_covered_true",
        "pair_covered_false",
    )

    def __init__(
        self,
        src_provided: np.ndarray,
        src_provided_true: np.ndarray,
        src_in_scope_true: np.ndarray,
    ) -> None:
        self.src_provided = src_provided
        self.src_provided_true = src_provided_true
        self.src_in_scope_true = src_in_scope_true
        self.pair_provided_true: Optional[np.ndarray] = None
        self.pair_provided_false: Optional[np.ndarray] = None
        self.pair_covered_true: Optional[np.ndarray] = None
        self.pair_covered_false: Optional[np.ndarray] = None


@dataclass(frozen=True)
class ModelRefitStats:
    """What one :meth:`EmpiricalJointModel.refit_delta` call actually did."""

    #: ``"delta"`` (incremental count transport) or ``"cold"`` (exact
    #: recount fallback -- a full model rebuild).
    mode: str
    #: Why the cold fallback fired (``None`` on the delta path).
    reason: Optional[str]
    #: Dirty ``uint64`` words vs the padded total (64-column granularity).
    dirty_words: int
    total_words: int
    #: Sources whose provides/coverage bits changed.
    dirty_sources: int
    #: Did any label bit change (flushes truth-conditioned caches)?
    labels_changed: bool
    #: Memoised subset entries carried into the new generation.
    carried_cache_entries: int
    #: Row ids of the dirty sources (empty on the cold path) -- consumed
    #: by the session's partition/evaluator carry, which must know *which*
    #: sources changed, not just how many.
    dirty_source_ids: tuple[int, ...] = ()

    @property
    def dirty_word_fraction(self) -> float:
        """Churn measure: fraction of packed words touched by the diff."""
        return float(self.dirty_words) / float(max(self.total_words, 1))


def _as_key(source_ids: Iterable[int]) -> SubsetKey:
    return frozenset(int(i) for i in source_ids)


class JointQualityModel(ABC):
    """Interface every fuser consumes: joint r / q for arbitrary subsets."""

    def __init__(self, source_names: Sequence[str], prior: float) -> None:
        check_fraction(prior, "prior")
        self._source_names = tuple(source_names)
        self._prior = prior
        # Memoised pair batch (see pair_joint_params): both clustering
        # sides and the correlation-matrix method consume the same values,
        # and the model's parameters are fixed after construction.  A
        # racing duplicate compute under threads is deterministic and
        # benign (either store wins with identical arrays).
        self._pair_params_cache = None

    @property
    def source_names(self) -> tuple[str, ...]:
        return self._source_names

    @property
    def n_sources(self) -> int:
        return len(self._source_names)

    @property
    def prior(self) -> float:
        """The a-priori truth probability ``alpha``."""
        return self._prior

    # -- primitive parameters -----------------------------------------

    @abstractmethod
    def joint_recall(self, source_ids: Iterable[int]) -> float:
        """``r_{S*}``; the empty subset has recall 1 by convention."""

    @abstractmethod
    def joint_fpr(self, source_ids: Iterable[int]) -> float:
        """``q_{S*}``; the empty subset has false-positive rate 1."""

    @abstractmethod
    def source_quality(self, source_id: int) -> SourceQuality:
        """Singleton quality (p_i, r_i, q_i) for one source."""

    def evidence_counts(self) -> Optional[tuple[int, int]]:
        """``(n_true, n_false)`` training counts, or ``None`` if parameter-only.

        Clustering uses the counts to ignore pairwise correlation estimates
        whose expected co-support is too small to be trustworthy.
        """
        return None

    def joint_coverage_counts(
        self, source_ids: Iterable[int]
    ) -> Optional[tuple[int, int]]:
        """``(n_true, n_false)`` triples covered by *every* source in the set.

        Under full coverage this equals :meth:`evidence_counts`; empirical
        models with scopes restrict to the joint coverage, which is the
        sample size behind the corresponding joint recall / fpr estimates.
        """
        return self.evidence_counts()

    def joint_params_batch(
        self, subsets: np.ndarray
    ) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """``(r_{S*}, q_{S*})`` arrays for many subsets at once, or ``None``.

        ``subsets`` is boolean with shape ``(n_subsets, n_sources)``.  Models
        that can answer subset statistics in bulk (the empirical model on
        its vectorized engine) override this; ``None`` signals that only the
        set-keyed scalar interface is available, and callers fall back to
        per-subset queries.
        """
        return None

    # -- derived quantities (shared by both implementations) ----------

    def recall(self, source_id: int) -> float:
        return self.source_quality(source_id).recall

    def fpr(self, source_id: int) -> float:
        return self.source_quality(source_id).false_positive_rate

    def correlation_true(self, source_ids: Iterable[int]) -> float:
        """``C_{S*} = r_{S*} / prod r_i`` (Eq. 16); 1 when undefined."""
        ids = list(source_ids)
        independent = float(np.prod([self.recall(i) for i in ids])) if ids else 1.0
        return safe_divide(self.joint_recall(ids), independent, default=1.0)

    def correlation_false(self, source_ids: Iterable[int]) -> float:
        """``C!_{S*} = q_{S*} / prod q_i`` (Eq. 17); 1 when undefined."""
        ids = list(source_ids)
        independent = float(np.prod([self.fpr(i) for i in ids])) if ids else 1.0
        return safe_divide(self.joint_fpr(ids), independent, default=1.0)

    def aggressive_factors(
        self, universe: Optional[Sequence[int]] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-source factors ``(C+_i, C-_i)`` over ``universe`` (Eq. 14-15).

        ``universe`` defaults to all sources.  The returned arrays are
        indexed positionally: entry ``k`` belongs to ``universe[k]``.  When a
        factor's denominator vanishes (the relevant subsets never co-occur in
        training data) the factor falls back to 1, i.e. independence.
        """
        ids = list(range(self.n_sources)) if universe is None else list(universe)
        c_plus = np.ones(len(ids))
        c_minus = np.ones(len(ids))
        batch = self._leave_one_out_params(ids)
        if batch is not None:
            # One vectorized model call answers the universe plus every
            # leave-one-out subset; the factor arithmetic below replays the
            # scalar expressions on those (bit-identical) values, so the
            # fast path and the scalar path agree exactly.
            (r_all, q_all), (r_rest, q_rest) = batch
            for k, i in enumerate(ids):
                c_plus[k] = safe_divide(
                    r_all, self.recall(i) * float(r_rest[k]), default=1.0
                )
                c_minus[k] = safe_divide(
                    q_all, self.fpr(i) * float(q_rest[k]), default=1.0
                )
            return c_plus, c_minus
        r_all = self.joint_recall(ids)
        q_all = self.joint_fpr(ids)
        for k, i in enumerate(ids):
            rest = [j for j in ids if j != i]
            c_plus[k] = safe_divide(
                r_all, self.recall(i) * self.joint_recall(rest), default=1.0
            )
            c_minus[k] = safe_divide(
                q_all, self.fpr(i) * self.joint_fpr(rest), default=1.0
            )
        return c_plus, c_minus

    def _leave_one_out_params(
        self, ids: list[int]
    ) -> Optional[
        tuple[tuple[float, float], tuple[np.ndarray, np.ndarray]]
    ]:
        """Universe + leave-one-out ``(r, q)`` via one batch call, or ``None``.

        Returns ``((r_all, q_all), (r_rest, q_rest))`` where entry ``k`` of
        the rest arrays is the subset ``ids`` minus ``ids[k]`` -- the shape
        :meth:`aggressive_factors` needs.  ``None`` when the model has no
        batch support (or the universe is empty) and callers must fall back
        to scalar queries.
        """
        if not ids:
            return None
        n = self.n_sources
        full = np.zeros(n, dtype=bool)
        full[ids] = True
        rows = np.tile(full, (len(ids) + 1, 1))
        for k, i in enumerate(ids):
            rows[k + 1, i] = False
        params = self.joint_params_batch(rows)
        if params is None:
            return None
        recalls, fprs = params
        return (
            (float(recalls[0]), float(fprs[0])),
            (recalls[1:], fprs[1:]),
        )

    def pair_joint_params(
        self,
    ) -> Optional[tuple[list[tuple[int, int]], np.ndarray, np.ndarray]]:
        """``(pairs, r, q)`` for every source pair via one batch call.

        ``pairs`` lists ``(i, j)`` with ``i < j`` in row-major order and
        entry ``k`` of the arrays is that pair's joint recall / fpr --
        values bit-identical to the scalar ``joint_recall``/``joint_fpr``
        queries they replace.  Returns ``None`` when the model has no
        batch support (legacy engine, explicit models); callers fall back
        to the O(n^2) scalar walk.  The batch is memoised: the model's
        parameters are fixed after construction, and both clustering
        sides consume the same values.
        """
        cached = self._pair_params_cache
        if cached is not None:
            return cached or None  # False memoises "no batch support"
        n = self.n_sources
        if n < 2:
            return None
        # Probe with a zero-row request before allocating the O(n^2) x n
        # pair matrix: non-batch models answer None immediately, and the
        # negative is memoised so repeated fits never rebuild the probe.
        if self.joint_params_batch(np.zeros((0, n), dtype=bool)) is None:
            self._pair_params_cache = False
            return None
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rows = np.zeros((len(pairs), n), dtype=bool)
        for k, (i, j) in enumerate(pairs):
            rows[k, i] = True
            rows[k, j] = True
        params = self.joint_params_batch(rows)
        if params is None:  # pragma: no cover - probe said otherwise
            self._pair_params_cache = False
            return None
        self._pair_params_cache = (pairs, params[0], params[1])
        return self._pair_params_cache

    def pair_coverage_counts(
        self,
    ) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """``(covered_true, covered_false)`` arrays for every source pair.

        Aligned with :meth:`pair_joint_params`'s pair order.  ``None`` when
        batch pair statistics are unavailable; callers fall back to scalar
        :meth:`joint_coverage_counts` queries.
        """
        return None

    def pairwise_correlations(self) -> tuple[np.ndarray, np.ndarray]:
        """Matrices ``(C_true, C_false)`` of pairwise correlation factors.

        Entry ``[i, j]`` is ``C_{ij}`` (resp. ``C!_{ij}``); the diagonal is
        left at 1.  Used for correlation-based source clustering (Section 5).
        On models with batch support every pair's joint parameters come
        from one :meth:`joint_params_batch` call (the O(n^2) scalar subset
        queries dominated clustered-fuser fit time on wide grids); the
        factor arithmetic replays the scalar expressions on those values,
        so both paths agree bit-for-bit.
        """
        n = self.n_sources
        c_true = np.ones((n, n))
        c_false = np.ones((n, n))
        batch = self.pair_joint_params()
        if batch is not None:
            pairs, r_pairs, q_pairs = batch
            for k, (i, j) in enumerate(pairs):
                independent_r = float(
                    np.prod([self.recall(i), self.recall(j)])
                )
                independent_q = float(np.prod([self.fpr(i), self.fpr(j)]))
                c_true[i, j] = c_true[j, i] = safe_divide(
                    float(r_pairs[k]), independent_r, default=1.0
                )
                c_false[i, j] = c_false[j, i] = safe_divide(
                    float(q_pairs[k]), independent_q, default=1.0
                )
            return c_true, c_false
        for i in range(n):
            for j in range(i + 1, n):
                c_true[i, j] = c_true[j, i] = self.correlation_true([i, j])
                c_false[i, j] = c_false[j, i] = self.correlation_false([i, j])
        return c_true, c_false


class MaskedJointCache:
    """Bitmask-keyed memo of ``(joint_recall, joint_fpr)`` model look-ups.

    The inclusion-exclusion fusers issue millions of subset queries while
    scoring; the dominant cost of a *cached* query through the set-keyed
    interface is building and hashing a frozenset.  The vectorized engine
    identifies a subset by an int bitmask instead -- int hashing is several
    times cheaper -- and falls through to the wrapped model only on the
    first sighting of a mask.  Values are exactly the model's own, so the
    legacy and vectorized engines stay bit-identical.

    The cache is safe under concurrent scoring: a lock guards the size
    check and store (reads are plain dict look-ups, atomic under the GIL).
    Model values are deterministic, so two threads racing on the same
    first-sighted mask compute the same tuple and either store wins --
    no torn or mixed reads are possible.

    Diagnostics: ``hits`` / ``misses`` / ``evictions`` counters (surfaced
    through :attr:`stats`, mirroring
    :class:`~repro.core.plans.CompiledPlanCache`) feed ``ServingReport``
    and ``fuse --repeat`` output.  The hit/miss increments are deliberately
    unlocked -- the get path is the hottest loop in the scalar fallbacks,
    and a lost increment under a thread race only nudges a diagnostic.
    Beyond ``max_entries`` the oldest-inserted entry is evicted (values are
    deterministic, so a re-sighted mask recomputes bit-identically).
    """

    __slots__ = (
        "_model", "_cache", "_max_entries", "_lock",
        "hits", "misses", "evictions",
    )

    def __init__(
        self, model: "JointQualityModel", max_entries: int = 1_000_000
    ) -> None:
        if max_entries < 0:
            raise ValueError(
                f"max_entries must be non-negative, got {max_entries}"
            )
        self._model = model
        self._max_entries = int(max_entries)
        self._lock = make_lock("MaskedJointCache._lock")
        # guarded-by: _lock
        self._cache: dict[int, tuple[float, float]] = {}
        # Hit/miss counters are deliberately unlocked diagnostics (see
        # class docstring); evictions only moves under the store lock.
        self.hits = 0
        self.misses = 0
        # guarded-by: _lock
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    def clear(self) -> None:
        """Drop every memoised look-up (the model-refit hook); stats survive."""
        with self._lock:
            self._cache.clear()

    @property
    def stats(self) -> dict:
        """Counters for serving diagnostics (see ``ServingReport``)."""
        with self._lock:
            return {
                "entries": len(self._cache),
                "max_entries": self._max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def get(self, mask: int, source_ids: Sequence[int]) -> tuple[float, float]:
        """``(r_{S*}, q_{S*})`` for the subset with bitmask ``mask``.

        ``source_ids`` must list exactly the bits set in ``mask``; it is
        consulted only on a cache miss (the mask alone is the key).  The
        model query runs outside the lock -- a racing duplicate compute is
        deterministic and benign, and holding the lock through it would
        serialise every parallel scalar-fallback worker.
        """
        value = self._cache.get(mask)
        if value is None:
            self.misses += 1
            value = (
                self._model.joint_recall(source_ids),
                self._model.joint_fpr(source_ids),
            )
            with self._lock:
                cache = self._cache
                if self._max_entries > 0:
                    while len(cache) >= self._max_entries:
                        del cache[next(iter(cache))]
                        self.evictions += 1
                    cache[mask] = value
        else:
            self.hits += 1
        return value

    def __getstate__(self) -> dict:
        # The lock is process-local; a pickled cache (process-backend jobs
        # carry their fuser) starts empty.
        return {"model": self._model, "max_entries": self._max_entries}

    def __setstate__(self, state: dict) -> None:
        self._model = state["model"]
        self._cache = {}
        self._max_entries = state["max_entries"]
        self._lock = make_lock("MaskedJointCache._lock")
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class EmpiricalJointModel(JointQualityModel):
    """Joint parameters measured from labelled training data.

    Parameters
    ----------
    observations:
        Training observation matrix.
    labels:
        Gold truth per triple (boolean, one per matrix column).
    prior:
        ``alpha``.  Pass :func:`repro.core.quality.estimate_prior` output to
        use the labelled truth fraction.
    smoothing:
        Laplace pseudo-count applied to all joint precision/recall ratios;
        ``0`` reproduces the paper's example tables exactly.
    max_cache_entries:
        Memoisation cap per parameter family.  Wide datasets (BOOK-scale)
        touch millions of distinct subsets during inclusion-exclusion;
        beyond the cap values are recomputed instead of stored, bounding
        memory at a small constant factor of the cap.
    engine:
        ``"vectorized"`` (default) answers every subset-intersection query
        from bit-packed uint64 words with popcounts; ``"legacy"`` uses the
        seed's full-width boolean-mask reductions.  Both produce identical
        integer counts, hence identical parameters.
    workers:
        Worker threads for :meth:`joint_params_batch`: requests larger
        than one chunk are fanned across a reusable pool (the popcount
        kernels release the GIL) and reassembled in chunk order, so
        results stay bit-identical to the serial sweep.  ``None`` consults
        ``REPRO_DEFAULT_WORKERS`` (library default: 1, serial).  The model
        owns its own pool, distinct from any fuser's, so nested dispatch
        (a cluster job requesting a batch) cannot deadlock.
    """

    def __init__(
        self,
        observations: ObservationMatrix,
        labels: np.ndarray,
        prior: float = 0.5,
        smoothing: float = 0.0,
        max_cache_entries: int = 200_000,
        engine: str = "vectorized",
        workers: Optional[int] = None,
    ) -> None:
        super().__init__(observations.source_names, prior)
        labels = np.asarray(labels, dtype=bool)
        if labels.shape != (observations.n_triples,):
            raise ValueError(
                f"labels shape {labels.shape} != ({observations.n_triples},)"
            )
        if smoothing < 0:
            raise ValueError(f"smoothing must be non-negative, got {smoothing}")
        if max_cache_entries < 0:
            raise ValueError(
                f"max_cache_entries must be non-negative, got {max_cache_entries}"
            )
        self._engine = check_engine(engine)
        self._workers = workers
        self._executor = make_executor(workers)
        self._observations = observations
        self._labels = labels
        self._smoothing = float(smoothing)
        self._max_cache = int(max_cache_entries)
        self._n_true = int(labels.sum())
        self._singletons = estimate_source_quality(
            observations, labels, prior=prior, smoothing=smoothing
        )
        self._partial_coverage = observations.has_partial_coverage
        if self._engine == "vectorized":
            self._true_words = pack_bool_vector(labels)
            self._false_words = pack_bool_vector(~labels)
        self._counts: Optional[_JointCounts] = None
        self._recall_cache: dict[SubsetKey, float] = {}
        self._fpr_cache: dict[SubsetKey, float] = {}
        self._precision_cache: dict[SubsetKey, float] = {}
        self._coverage_cache: dict[SubsetKey, tuple[int, int]] = {}

    @property
    def engine(self) -> str:
        """The subset-statistics engine this model answers queries with."""
        return self._engine

    def close(self) -> None:
        """Shut down the model's batch-evaluation pool (idempotent).

        ``ScoringSession.refit`` calls this on the retired model; the GC
        finalizer would reclaim an unclosed pool eventually, but serving
        processes should not carry retired executors until then.  A closed
        model keeps answering every query -- batch chunks just run inline.
        """
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "EmpiricalJointModel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- estimation ----------------------------------------------------
    #
    # All joint parameters are *scope-aware*: they are estimated over the
    # subset's joint coverage, i.e. the triples every member could have
    # provided.  Under full coverage this reduces to the plain global
    # fractions the paper's examples use; with partial coverage it keeps the
    # joint estimates consistent with the (already scope-aware) singleton
    # quality, without which every pair of narrow-scope sources would look
    # spuriously anti-correlated.

    def _intersection_counts(self, key: SubsetKey) -> tuple[int, int]:
        """``(provided_true, provided_false)`` of the subset's intersection.

        The vectorized engine ANDs the subset's bit-packed provider rows and
        popcounts through the packed label masks; the legacy engine reduces
        full-width boolean masks.  Both return identical integers.
        """
        ids = sorted(key)
        if self._engine == "vectorized":
            words = self._observations.packed_provides.and_reduce(ids)
            return (
                popcount(words & self._true_words),
                popcount(words & self._false_words),
            )
        mask = self._observations.subset_intersection(ids)
        return (
            int((mask & self._labels).sum()),
            int((mask & ~self._labels).sum()),
        )

    def joint_precision(self, source_ids: Iterable[int]) -> float:
        """``p_{S*}``: labelled-true fraction of the subset's intersection."""
        key = _as_key(source_ids)
        if not key:
            return 1.0
        cached = self._precision_cache.get(key)
        if cached is not None:
            return cached
        provided_true, provided_false = self._intersection_counts(key)
        value = self._ratio(provided_true, provided_true + provided_false)
        self._store(self._precision_cache, key, value)
        return value

    def joint_recall(self, source_ids: Iterable[int]) -> float:
        key = _as_key(source_ids)
        if not key:
            return 1.0
        cached = self._recall_cache.get(key)
        if cached is not None:
            return cached
        provided_true, _ = self._intersection_counts(key)
        covered_true, _ = self.joint_coverage_counts(key)
        value = self._ratio(provided_true, covered_true)
        self._store(self._recall_cache, key, value)
        return value

    def joint_fpr(self, source_ids: Iterable[int]) -> float:
        """``q_{S*}`` derived from joint precision/recall (Theorem 3.5).

        When the subset's intersection is entirely false (joint precision 0,
        where the derivation degenerates) we fall back to the direct count
        of jointly-provided false triples -- the only estimate available,
        and exactly the signal that matters for sources correlated on
        mistakes (Scenario 3 of Example 4.1).
        """
        key = _as_key(source_ids)
        if not key:
            return 1.0
        cached = self._fpr_cache.get(key)
        if cached is not None:
            return cached
        precision = self.joint_precision(key)
        if precision > 0.0:
            value = derive_false_positive_rate(
                precision, self.joint_recall(key), self.prior, clip=True
            )
        else:
            _, provided_false = self._intersection_counts(key)
            _, covered_false = self.joint_coverage_counts(key)
            value = self._ratio(provided_false, covered_false)
        self._store(self._fpr_cache, key, value)
        return value

    def joint_coverage_counts(self, source_ids: Iterable[int]) -> tuple[int, int]:
        """``(covered_true, covered_false)`` for the subset's joint scope."""
        key = _as_key(source_ids)
        if not self._partial_coverage or not key:
            return self.evidence_counts()
        cached = self._coverage_cache.get(key)
        if cached is not None:
            return cached
        ids = sorted(key)
        if self._engine == "vectorized":
            words = self._observations.packed_coverage.and_reduce(ids)
            value = (
                popcount(words & self._true_words),
                popcount(words & self._false_words),
            )
        else:
            mask = self._observations.subset_coverage(ids)
            value = (
                int((mask & self._labels).sum()),
                int((mask & ~self._labels).sum()),
            )
        if len(self._coverage_cache) < self._max_cache:
            self._coverage_cache[key] = value
        return value

    def joint_params_batch(
        self, subsets: np.ndarray
    ) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """Vectorized ``(r_{S*}, q_{S*})`` for many subsets in bulk.

        The intersection words of *all* requested subsets are computed with
        one pass per source row (:meth:`PackedMatrix.and_reduce_batch`), the
        counts with vectorized popcounts, and the Theorem 3.5 derivation
        element-wise in the same operation order as the scalar path -- so
        every returned value is bit-identical to the corresponding
        :meth:`joint_recall` / :meth:`joint_fpr` call.  Returns ``None`` on
        the legacy engine (callers then fall back to scalar queries).
        """
        if self._engine != "vectorized":
            return None
        subsets = np.asarray(subsets, dtype=bool)
        if subsets.ndim != 2 or subsets.shape[1] != self.n_sources:
            raise ValueError(
                f"subsets shape {subsets.shape} != (n_subsets, {self.n_sources})"
            )
        n_subsets = subsets.shape[0]
        recalls = np.empty(n_subsets, dtype=float)
        fprs = np.empty(n_subsets, dtype=float)
        starts = range(0, n_subsets, _BATCH_CHUNK)
        if self._executor is not None and len(starts) > 1:
            # Fan the (element-wise independent) chunks across the model's
            # pool and reassemble in chunk order -- bit-identical to the
            # serial sweep, since chunk boundaries are unchanged.
            chunks = self._executor.map(
                lambda start: self._params_chunk(
                    subsets[start : min(start + _BATCH_CHUNK, n_subsets)]
                ),
                list(starts),
            )
            for start, (chunk_r, chunk_q) in zip(starts, chunks):
                stop = min(start + _BATCH_CHUNK, n_subsets)
                recalls[start:stop] = chunk_r
                fprs[start:stop] = chunk_q
            return recalls, fprs
        for start in starts:
            stop = min(start + _BATCH_CHUNK, n_subsets)
            recalls[start:stop], fprs[start:stop] = self._params_chunk(
                subsets[start:stop]
            )
        return recalls, fprs

    def _params_chunk(
        self, subsets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        observations = self._observations
        intersection = observations.packed_provides.and_reduce_batch(subsets)
        provided_true = popcount_rows(intersection & self._true_words)
        provided_false = popcount_rows(intersection & self._false_words)
        if self._partial_coverage:
            covered = observations.packed_coverage.and_reduce_batch(subsets)
            covered_true = popcount_rows(covered & self._true_words)
            covered_false = popcount_rows(covered & self._false_words)
        else:
            n_true, n_false = self.evidence_counts()
            covered_true = np.full(len(subsets), n_true, dtype=np.int64)
            covered_false = np.full(len(subsets), n_false, dtype=np.int64)
        return self._params_from_counts(
            provided_true,
            provided_false,
            covered_true,
            covered_false,
            empty=~subsets.any(axis=1),
        )

    def _params_from_counts(
        self,
        provided_true: np.ndarray,
        provided_false: np.ndarray,
        covered_true: np.ndarray,
        covered_false: np.ndarray,
        empty: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(r, q)`` arrays from integer count arrays -- the shared float path.

        Both the batched popcount sweep (:meth:`_params_chunk`) and the
        delta-maintained pair counters funnel through this one function, so
        identical integers always produce bit-identical parameters.
        """
        recall = self._ratio_vec(provided_true, covered_true)
        precision = self._ratio_vec(provided_true, provided_true + provided_false)
        # Theorem 3.5 with clip=True, element-wise in the scalar expression's
        # evaluation order (left-to-right), so values match bit-for-bit.
        prior_ratio = self.prior / (1.0 - self.prior)
        with np.errstate(divide="ignore", invalid="ignore"):
            derived = prior_ratio * (1.0 - precision) / precision * recall
        derived = np.where(derived > 1.0, 1.0, derived)
        fallback = self._ratio_vec(provided_false, covered_false)
        fpr = np.where(precision > 0.0, derived, fallback)
        if empty is not None:
            recall = np.where(empty, 1.0, recall)
            fpr = np.where(empty, 1.0, fpr)
        return recall, fpr

    def _ratio_vec(
        self, numerator: np.ndarray, denominator: np.ndarray
    ) -> np.ndarray:
        """Element-wise :meth:`_ratio` (same smoothing, same 0/0 rule)."""
        s = self._smoothing
        den = denominator + 2.0 * s
        with np.errstate(divide="ignore", invalid="ignore"):
            out = (numerator + s) / den
        return np.where(den == 0.0, 0.0, out)

    # -- updatable count state (delta refit) ---------------------------

    def _count_state(self) -> _JointCounts:
        """Per-source integer counters, built from packed words on demand.

        Bit-identical to the boolean-sum counts ``estimate_source_quality``
        measures: packed rows zero-pad their tails, so row popcounts equal
        row sums exactly.  Vectorized engine only (callers guard).
        """
        counts = self._counts
        if counts is None:
            provides = self._observations.packed_provides.words
            coverage = self._observations.packed_coverage.words
            counts = _JointCounts(
                src_provided=popcount_rows(provides),
                src_provided_true=popcount_rows(provides & self._true_words),
                src_in_scope_true=popcount_rows(coverage & self._true_words),
            )
            self._counts = counts
        return counts

    def sufficient_statistics(self) -> "Optional[dict[str, np.ndarray]]":
        """The per-source integer counters every served float derives from.

        Used by the persistence layer as a snapshot integrity
        cross-check: a recovered model rebuilt from the snapshotted
        matrices must reproduce these integers exactly, or the snapshot
        is treated as corrupt.  ``None`` on the legacy engine, which
        keeps no packed count state.
        """
        if self._engine != "vectorized":
            return None
        counts = self._count_state()
        return {
            "src_provided": np.asarray(counts.src_provided, dtype=np.int64),
            "src_provided_true": np.asarray(
                counts.src_provided_true, dtype=np.int64
            ),
            "src_in_scope_true": np.asarray(
                counts.src_in_scope_true, dtype=np.int64
            ),
        }

    def _build_pair_counts(self, counts: _JointCounts) -> None:
        """Populate the per-pair counters by chunked packed popcounts."""
        n = self.n_sources
        ii, jj = np.triu_indices(n, k=1)
        n_pairs = ii.size
        provides = self._observations.packed_provides.words
        provided_true = np.empty(n_pairs, dtype=np.int64)
        provided_false = np.empty(n_pairs, dtype=np.int64)
        for start in range(0, n_pairs, _BATCH_CHUNK):
            stop = min(start + _BATCH_CHUNK, n_pairs)
            intersection = provides[ii[start:stop]] & provides[jj[start:stop]]
            provided_true[start:stop] = popcount_rows(
                intersection & self._true_words
            )
            provided_false[start:stop] = popcount_rows(
                intersection & self._false_words
            )
        counts.pair_provided_true = provided_true
        counts.pair_provided_false = provided_false
        if self._partial_coverage:
            coverage = self._observations.packed_coverage.words
            covered_true = np.empty(n_pairs, dtype=np.int64)
            covered_false = np.empty(n_pairs, dtype=np.int64)
            for start in range(0, n_pairs, _BATCH_CHUNK):
                stop = min(start + _BATCH_CHUNK, n_pairs)
                joint_scope = (
                    coverage[ii[start:stop]] & coverage[jj[start:stop]]
                )
                covered_true[start:stop] = popcount_rows(
                    joint_scope & self._true_words
                )
                covered_false[start:stop] = popcount_rows(
                    joint_scope & self._false_words
                )
            counts.pair_covered_true = covered_true
            counts.pair_covered_false = covered_false

    def _pair_coverage_arrays(
        self, counts: _JointCounts
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-pair ``(covered_true, covered_false)``; full coverage is flat."""
        if self._partial_coverage:
            return counts.pair_covered_true, counts.pair_covered_false
        n = self.n_sources
        n_pairs = n * (n - 1) // 2
        n_true, n_false = self.evidence_counts()
        return (
            np.full(n_pairs, n_true, dtype=np.int64),
            np.full(n_pairs, n_false, dtype=np.int64),
        )

    def pair_joint_params(
        self,
    ) -> Optional[tuple[list[tuple[int, int]], np.ndarray, np.ndarray]]:
        """All-pairs ``(pairs, r, q)`` served from the updatable counters.

        Same contract (and bit-identical values) as the base-class batch
        path: the counters hold exactly the integers
        ``and_reduce_batch`` + popcount would produce, and the float
        derivation goes through :meth:`_params_from_counts` either way.
        Keeping the counts around is what lets :meth:`refit_delta`
        transport them to the next generation with dirty-word updates
        instead of a full O(pairs x words) recount.
        """
        if self._engine != "vectorized":
            return super().pair_joint_params()
        cached = self._pair_params_cache
        if cached is not None:
            return cached or None
        n = self.n_sources
        if n < 2:
            return None
        counts = self._count_state()
        if counts.pair_provided_true is None:
            self._build_pair_counts(counts)
        covered_true, covered_false = self._pair_coverage_arrays(counts)
        recalls, fprs = self._params_from_counts(
            counts.pair_provided_true,
            counts.pair_provided_false,
            covered_true,
            covered_false,
        )
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        self._pair_params_cache = (pairs, recalls, fprs)
        return self._pair_params_cache

    def pair_coverage_counts(
        self,
    ) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """Per-pair scope counts aligned with :meth:`pair_joint_params`."""
        if self._engine != "vectorized" or self.n_sources < 2:
            return None
        counts = self._count_state()
        if self._partial_coverage and counts.pair_covered_true is None:
            self._build_pair_counts(counts)
        return self._pair_coverage_arrays(counts)

    # -- incremental refit ---------------------------------------------

    def refit_delta(
        self,
        observations: ObservationMatrix,
        labels: np.ndarray,
        prior: Optional[float] = None,
        smoothing: Optional[float] = None,
        max_churn_fraction: float = DEFAULT_REFIT_CHURN_FRACTION,
    ) -> tuple["EmpiricalJointModel", ModelRefitStats]:
        """A new model for ``(observations, labels)``, built incrementally.

        Computes the word-level diff against this model's training snapshot
        (:func:`~repro.core.deltas.dirty_words`) and transports the integer
        sufficient statistics: for each dirty ``uint64`` word, old-word
        popcounts are subtracted and new-word popcounts added -- cost
        proportional to churn, not dataset size.  Float parameters are then
        re-derived from the updated integers through the same code paths a
        cold build uses, so the returned model is **bit-identical** to
        ``EmpiricalJointModel(observations, labels, ...)`` (pinned by
        ``tests/test_refit_delta.py``).  Memoised subset entries whose
        source sets do not intersect the dirty sources are carried over
        (their counts provably did not change); the rest are dropped.

        Falls back to an exact recount (a plain cold construction) when the
        diff is unavailable (``None``: source sets differ), the engine is
        legacy, or the dirty-word fraction exceeds ``max_churn_fraction``.

        Returns ``(new_model, stats)``.  This model is left untouched and
        remains fully usable (the session retires it after the swap).
        """
        if not 0.0 <= max_churn_fraction <= 1.0:
            raise ValueError(
                "max_churn_fraction must be in [0, 1], "
                f"got {max_churn_fraction}"
            )
        new_prior = self.prior if prior is None else prior
        new_smoothing = (
            self._smoothing if smoothing is None else float(smoothing)
        )
        check_fraction(new_prior, "prior")
        if new_smoothing < 0:
            raise ValueError(
                f"smoothing must be non-negative, got {new_smoothing}"
            )
        labels = np.asarray(labels, dtype=bool)
        if labels.shape != (observations.n_triples,):
            raise ValueError(
                f"labels shape {labels.shape} != ({observations.n_triples},)"
            )

        def _cold(reason: str, diff: Optional["WordDiff"] = None) -> tuple[
            "EmpiricalJointModel", ModelRefitStats
        ]:
            model = EmpiricalJointModel(
                observations,
                labels,
                prior=new_prior,
                smoothing=new_smoothing,
                max_cache_entries=self._max_cache,
                engine=self._engine,
                workers=self._workers,
            )
            return model, ModelRefitStats(
                mode="cold",
                reason=reason,
                dirty_words=(
                    diff.word_ids.size if diff is not None else 0
                ),
                total_words=(diff.n_words if diff is not None else 0),
                dirty_sources=(
                    int(diff.dirty_sources.sum()) if diff is not None else 0
                ),
                labels_changed=(
                    diff.labels_changed if diff is not None else True
                ),
                carried_cache_entries=0,
            )

        if self._engine != "vectorized":
            return _cold("legacy engine")
        from repro.core.deltas import dirty_words

        diff = dirty_words(self._observations, observations, self._labels, labels)
        if diff is None:
            return _cold("source sets differ")
        if diff.dirty_fraction > max_churn_fraction:
            return _cold(
                f"churn {diff.dirty_fraction:.2f} > {max_churn_fraction}",
                diff,
            )
        return self._refit_from_diff(
            observations, labels, new_prior, new_smoothing, diff
        )

    def _refit_from_diff(
        self,
        observations: ObservationMatrix,
        labels: np.ndarray,
        prior: float,
        smoothing: float,
        diff: "WordDiff",
    ) -> tuple["EmpiricalJointModel", ModelRefitStats]:
        """The delta path proper: transport counts, re-derive floats."""
        cls = type(self)
        new = cls.__new__(cls)
        JointQualityModel.__init__(new, observations.source_names, prior)
        new._engine = self._engine
        new._workers = self._workers
        new._executor = make_executor(self._workers)
        new._observations = observations
        new._labels = labels
        new._smoothing = smoothing
        new._max_cache = self._max_cache
        new._partial_coverage = observations.has_partial_coverage
        if diff.labels_changed:
            new._true_words = pack_bool_vector(labels)
            new._false_words = pack_bool_vector(~labels)
            new._n_true = int(labels.sum())
        else:
            # labels_changed=False implies identical labels *and* width
            # (appended/removed columns always flip a label-packing bit).
            new._true_words = self._true_words
            new._false_words = self._false_words
            new._n_true = self._n_true

        # Integer count transport over dirty words only.
        word_ids = diff.word_ids
        old_counts = self._count_state()
        old_provides = _gather_words(
            self._observations.packed_provides.words, word_ids
        )
        new_provides = _gather_words(
            observations.packed_provides.words, word_ids
        )
        old_coverage = _gather_words(
            self._observations.packed_coverage.words, word_ids
        )
        new_coverage = _gather_words(
            observations.packed_coverage.words, word_ids
        )
        old_true = _gather_words(self._true_words, word_ids)
        new_true = _gather_words(new._true_words, word_ids)
        counts = _JointCounts(
            src_provided=old_counts.src_provided
            + popcount_rows(new_provides)
            - popcount_rows(old_provides),
            src_provided_true=old_counts.src_provided_true
            + popcount_rows(new_provides & new_true)
            - popcount_rows(old_provides & old_true),
            src_in_scope_true=old_counts.src_in_scope_true
            + popcount_rows(new_coverage & new_true)
            - popcount_rows(old_coverage & old_true),
        )
        if (
            old_counts.pair_provided_true is not None
            and new._partial_coverage == self._partial_coverage
        ):
            old_false = _gather_words(self._false_words, word_ids)
            new_false = _gather_words(new._false_words, word_ids)
            n = self.n_sources
            ii, jj = np.triu_indices(n, k=1)
            old_inter = old_provides[ii] & old_provides[jj]
            new_inter = new_provides[ii] & new_provides[jj]
            counts.pair_provided_true = (
                old_counts.pair_provided_true
                + popcount_rows(new_inter & new_true)
                - popcount_rows(old_inter & old_true)
            )
            counts.pair_provided_false = (
                old_counts.pair_provided_false
                + popcount_rows(new_inter & new_false)
                - popcount_rows(old_inter & old_false)
            )
            if new._partial_coverage:
                old_scope = old_coverage[ii] & old_coverage[jj]
                new_scope = new_coverage[ii] & new_coverage[jj]
                counts.pair_covered_true = (
                    old_counts.pair_covered_true
                    + popcount_rows(new_scope & new_true)
                    - popcount_rows(old_scope & old_true)
                )
                counts.pair_covered_false = (
                    old_counts.pair_covered_false
                    + popcount_rows(new_scope & new_false)
                    - popcount_rows(old_scope & old_false)
                )
        new._counts = counts

        # Singleton qualities: dirty sources re-derive from the updated
        # counts; clean sources reuse the previous (identical-by-counts)
        # objects when nothing that enters the formula changed.
        reuse_clean = (
            not diff.labels_changed
            and prior == self.prior
            and smoothing == self._smoothing
        )
        dirty_sources = diff.dirty_sources
        singletons: list[SourceQuality] = []
        for i, name in enumerate(new._source_names):
            if reuse_clean and not dirty_sources[i]:
                singletons.append(self._singletons[i])
            else:
                singletons.append(
                    quality_from_counts(
                        name=name,
                        provided=int(counts.src_provided[i]),
                        provided_true=int(counts.src_provided_true[i]),
                        in_scope_true=int(counts.src_in_scope_true[i]),
                        prior=prior,
                        smoothing=smoothing,
                    )
                )
        new._singletons = singletons

        # Selective memo carry-over: an entry is valid iff every count and
        # every formula input behind it is unchanged -- its source set must
        # avoid the dirty sources, labels must be identical, and the knobs
        # the cached float depends on must match.
        dirty_set = frozenset(np.flatnonzero(dirty_sources).tolist())

        def _carry(cache: dict, valid: bool) -> dict:
            if not valid or diff.labels_changed:
                return {}
            if not dirty_set:
                return dict(cache)
            return {
                key: value
                for key, value in cache.items()
                if dirty_set.isdisjoint(key)
            }

        same_smoothing = smoothing == self._smoothing
        new._coverage_cache = _carry(self._coverage_cache, True)
        new._recall_cache = _carry(self._recall_cache, same_smoothing)
        new._precision_cache = _carry(self._precision_cache, same_smoothing)
        new._fpr_cache = _carry(
            self._fpr_cache, same_smoothing and prior == self.prior
        )
        carried = (
            len(new._coverage_cache)
            + len(new._recall_cache)
            + len(new._precision_cache)
            + len(new._fpr_cache)
        )
        return new, ModelRefitStats(
            mode="delta",
            reason=None,
            dirty_words=int(word_ids.size),
            total_words=int(diff.n_words),
            dirty_sources=int(dirty_sources.sum()),
            labels_changed=bool(diff.labels_changed),
            carried_cache_entries=carried,
            dirty_source_ids=tuple(
                int(i) for i in np.flatnonzero(dirty_sources)
            ),
        )

    @property
    def smoothing(self) -> float:
        """Laplace pseudo-count all quality ratios were computed with."""
        return self._smoothing

    def source_quality(self, source_id: int) -> SourceQuality:
        return self._singletons[int(source_id)]

    def source_qualities(self) -> list[SourceQuality]:
        """All singleton qualities in row order."""
        return list(self._singletons)

    def evidence_counts(self) -> tuple[int, int]:
        n_false = int((~self._labels).sum())
        return self._n_true, n_false

    def _ratio(self, numerator: int, denominator: int) -> float:
        s = self._smoothing
        if denominator + 2.0 * s == 0.0:
            return 0.0
        return (numerator + s) / (denominator + 2.0 * s)

    def _store(self, cache: dict[SubsetKey, float], key: SubsetKey, value: float) -> None:
        if len(cache) < self._max_cache:
            cache[key] = value


class ExplicitJointModel(JointQualityModel):
    """Joint parameters supplied directly by the caller.

    Unspecified subsets default to independence products of the singleton
    parameters, so a partially-specified model degrades gracefully.  This is
    the vehicle for the paper's worked examples, where joint recalls such as
    ``r_1245 = 0.22`` are given rather than measured.
    """

    def __init__(
        self,
        qualities: Sequence[SourceQuality],
        prior: float = 0.5,
        joint_recalls: Optional[Mapping[frozenset[int], float]] = None,
        joint_fprs: Optional[Mapping[frozenset[int], float]] = None,
    ) -> None:
        super().__init__([q.name for q in qualities], prior)
        self._qualities = list(qualities)
        self._recalls = {_as_key(k): float(v) for k, v in (joint_recalls or {}).items()}
        self._fprs = {_as_key(k): float(v) for k, v in (joint_fprs or {}).items()}
        for key in list(self._recalls) + list(self._fprs):
            for i in key:
                if not 0 <= i < self.n_sources:
                    raise ValueError(f"joint parameter names unknown source id {i}")

    def joint_recall(self, source_ids: Iterable[int]) -> float:
        key = _as_key(source_ids)
        if not key:
            return 1.0
        if key in self._recalls:
            return self._recalls[key]
        if len(key) == 1:
            return self._qualities[next(iter(key))].recall
        return float(np.prod([self.joint_recall([i]) for i in key]))

    def joint_fpr(self, source_ids: Iterable[int]) -> float:
        key = _as_key(source_ids)
        if not key:
            return 1.0
        if key in self._fprs:
            return self._fprs[key]
        if len(key) == 1:
            return self._qualities[next(iter(key))].false_positive_rate
        return float(np.prod([self.joint_fpr([i]) for i in key]))

    def source_quality(self, source_id: int) -> SourceQuality:
        return self._qualities[int(source_id)]


class IndependentJointModel(ExplicitJointModel):
    """A joint model that *assumes* independence everywhere.

    Feeding this into the exact correlation fuser must reproduce the
    independent PrecRec result (Corollary 4.3); the equivalence is asserted
    in the test suite.
    """

    def __init__(self, qualities: Sequence[SourceQuality], prior: float = 0.5) -> None:
        super().__init__(qualities, prior=prior, joint_recalls=None, joint_fprs=None)
