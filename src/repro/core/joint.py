"""Joint source quality and correlation factors (Sections 2.2 and 4.2).

Correlation between sources is captured non-parametrically by the *joint*
precision and recall of source subsets:

    p_{S*} = Pr(t | S* |= t)        joint precision     (Eq. 3)
    r_{S*} = Pr(S* |= t | t)        joint recall        (Eq. 4)

with the joint false-positive rate ``q_{S*}`` derived from ``p_{S*}`` and
``r_{S*}`` by the same Theorem 3.5 formula used for single sources.  From
these the paper defines correlation factors

    C_{S*}  = r_{S*} / prod_i r_i   (Eq. 16; >1 positive, <1 negative)
    C!_{S*} = q_{S*} / prod_i q_i   (Eq. 17)

and the per-source *aggressive* factors over a universe ``S``

    C+_i = r_S / (r_i * r_{S \\ i})  (Eq. 14)
    C-_i = q_S / (q_i * q_{S \\ i})  (Eq. 15)

This module provides two implementations behind one interface:

- :class:`EmpiricalJointModel` measures every joint parameter from labelled
  training data (with optional Laplace smoothing), memoising by subset;
- :class:`ExplicitJointModel` serves parameters supplied directly (used by
  the paper's worked examples and by tests), falling back to independence
  products for unspecified subsets.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.core.bitset import pack_bool_vector, popcount, popcount_rows
from repro.core.observations import ObservationMatrix
from repro.core.parallel import make_executor
from repro.core.quality import (
    SourceQuality,
    derive_false_positive_rate,
    estimate_source_quality,
)
from repro.util.probability import safe_divide
from repro.util.validation import check_engine, check_fraction

SubsetKey = frozenset[int]

#: Rows per chunk in :meth:`EmpiricalJointModel.joint_params_batch` --
#: bounds the batched AND accumulator at a few tens of MB even when a fuser
#: asks for hundreds of thousands of subset unions over a wide matrix.
_BATCH_CHUNK = 32_768


def _as_key(source_ids: Iterable[int]) -> SubsetKey:
    return frozenset(int(i) for i in source_ids)


class JointQualityModel(ABC):
    """Interface every fuser consumes: joint r / q for arbitrary subsets."""

    def __init__(self, source_names: Sequence[str], prior: float) -> None:
        check_fraction(prior, "prior")
        self._source_names = tuple(source_names)
        self._prior = prior
        # Memoised pair batch (see pair_joint_params): both clustering
        # sides and the correlation-matrix method consume the same values,
        # and the model's parameters are fixed after construction.  A
        # racing duplicate compute under threads is deterministic and
        # benign (either store wins with identical arrays).
        self._pair_params_cache = None

    @property
    def source_names(self) -> tuple[str, ...]:
        return self._source_names

    @property
    def n_sources(self) -> int:
        return len(self._source_names)

    @property
    def prior(self) -> float:
        """The a-priori truth probability ``alpha``."""
        return self._prior

    # -- primitive parameters -----------------------------------------

    @abstractmethod
    def joint_recall(self, source_ids: Iterable[int]) -> float:
        """``r_{S*}``; the empty subset has recall 1 by convention."""

    @abstractmethod
    def joint_fpr(self, source_ids: Iterable[int]) -> float:
        """``q_{S*}``; the empty subset has false-positive rate 1."""

    @abstractmethod
    def source_quality(self, source_id: int) -> SourceQuality:
        """Singleton quality (p_i, r_i, q_i) for one source."""

    def evidence_counts(self) -> Optional[tuple[int, int]]:
        """``(n_true, n_false)`` training counts, or ``None`` if parameter-only.

        Clustering uses the counts to ignore pairwise correlation estimates
        whose expected co-support is too small to be trustworthy.
        """
        return None

    def joint_coverage_counts(
        self, source_ids: Iterable[int]
    ) -> Optional[tuple[int, int]]:
        """``(n_true, n_false)`` triples covered by *every* source in the set.

        Under full coverage this equals :meth:`evidence_counts`; empirical
        models with scopes restrict to the joint coverage, which is the
        sample size behind the corresponding joint recall / fpr estimates.
        """
        return self.evidence_counts()

    def joint_params_batch(
        self, subsets: np.ndarray
    ) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """``(r_{S*}, q_{S*})`` arrays for many subsets at once, or ``None``.

        ``subsets`` is boolean with shape ``(n_subsets, n_sources)``.  Models
        that can answer subset statistics in bulk (the empirical model on
        its vectorized engine) override this; ``None`` signals that only the
        set-keyed scalar interface is available, and callers fall back to
        per-subset queries.
        """
        return None

    # -- derived quantities (shared by both implementations) ----------

    def recall(self, source_id: int) -> float:
        return self.source_quality(source_id).recall

    def fpr(self, source_id: int) -> float:
        return self.source_quality(source_id).false_positive_rate

    def correlation_true(self, source_ids: Iterable[int]) -> float:
        """``C_{S*} = r_{S*} / prod r_i`` (Eq. 16); 1 when undefined."""
        ids = list(source_ids)
        independent = float(np.prod([self.recall(i) for i in ids])) if ids else 1.0
        return safe_divide(self.joint_recall(ids), independent, default=1.0)

    def correlation_false(self, source_ids: Iterable[int]) -> float:
        """``C!_{S*} = q_{S*} / prod q_i`` (Eq. 17); 1 when undefined."""
        ids = list(source_ids)
        independent = float(np.prod([self.fpr(i) for i in ids])) if ids else 1.0
        return safe_divide(self.joint_fpr(ids), independent, default=1.0)

    def aggressive_factors(
        self, universe: Optional[Sequence[int]] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-source factors ``(C+_i, C-_i)`` over ``universe`` (Eq. 14-15).

        ``universe`` defaults to all sources.  The returned arrays are
        indexed positionally: entry ``k`` belongs to ``universe[k]``.  When a
        factor's denominator vanishes (the relevant subsets never co-occur in
        training data) the factor falls back to 1, i.e. independence.
        """
        ids = list(range(self.n_sources)) if universe is None else list(universe)
        c_plus = np.ones(len(ids))
        c_minus = np.ones(len(ids))
        batch = self._leave_one_out_params(ids)
        if batch is not None:
            # One vectorized model call answers the universe plus every
            # leave-one-out subset; the factor arithmetic below replays the
            # scalar expressions on those (bit-identical) values, so the
            # fast path and the scalar path agree exactly.
            (r_all, q_all), (r_rest, q_rest) = batch
            for k, i in enumerate(ids):
                c_plus[k] = safe_divide(
                    r_all, self.recall(i) * float(r_rest[k]), default=1.0
                )
                c_minus[k] = safe_divide(
                    q_all, self.fpr(i) * float(q_rest[k]), default=1.0
                )
            return c_plus, c_minus
        r_all = self.joint_recall(ids)
        q_all = self.joint_fpr(ids)
        for k, i in enumerate(ids):
            rest = [j for j in ids if j != i]
            c_plus[k] = safe_divide(
                r_all, self.recall(i) * self.joint_recall(rest), default=1.0
            )
            c_minus[k] = safe_divide(
                q_all, self.fpr(i) * self.joint_fpr(rest), default=1.0
            )
        return c_plus, c_minus

    def _leave_one_out_params(self, ids: list[int]):
        """Universe + leave-one-out ``(r, q)`` via one batch call, or ``None``.

        Returns ``((r_all, q_all), (r_rest, q_rest))`` where entry ``k`` of
        the rest arrays is the subset ``ids`` minus ``ids[k]`` -- the shape
        :meth:`aggressive_factors` needs.  ``None`` when the model has no
        batch support (or the universe is empty) and callers must fall back
        to scalar queries.
        """
        if not ids:
            return None
        n = self.n_sources
        full = np.zeros(n, dtype=bool)
        full[ids] = True
        rows = np.tile(full, (len(ids) + 1, 1))
        for k, i in enumerate(ids):
            rows[k + 1, i] = False
        params = self.joint_params_batch(rows)
        if params is None:
            return None
        recalls, fprs = params
        return (
            (float(recalls[0]), float(fprs[0])),
            (recalls[1:], fprs[1:]),
        )

    def pair_joint_params(
        self,
    ) -> Optional[tuple[list[tuple[int, int]], np.ndarray, np.ndarray]]:
        """``(pairs, r, q)`` for every source pair via one batch call.

        ``pairs`` lists ``(i, j)`` with ``i < j`` in row-major order and
        entry ``k`` of the arrays is that pair's joint recall / fpr --
        values bit-identical to the scalar ``joint_recall``/``joint_fpr``
        queries they replace.  Returns ``None`` when the model has no
        batch support (legacy engine, explicit models); callers fall back
        to the O(n^2) scalar walk.  The batch is memoised: the model's
        parameters are fixed after construction, and both clustering
        sides consume the same values.
        """
        cached = self._pair_params_cache
        if cached is not None:
            return cached or None  # False memoises "no batch support"
        n = self.n_sources
        if n < 2:
            return None
        # Probe with a zero-row request before allocating the O(n^2) x n
        # pair matrix: non-batch models answer None immediately, and the
        # negative is memoised so repeated fits never rebuild the probe.
        if self.joint_params_batch(np.zeros((0, n), dtype=bool)) is None:
            self._pair_params_cache = False
            return None
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rows = np.zeros((len(pairs), n), dtype=bool)
        for k, (i, j) in enumerate(pairs):
            rows[k, i] = True
            rows[k, j] = True
        params = self.joint_params_batch(rows)
        if params is None:  # pragma: no cover - probe said otherwise
            self._pair_params_cache = False
            return None
        self._pair_params_cache = (pairs, params[0], params[1])
        return self._pair_params_cache

    def pairwise_correlations(self) -> tuple[np.ndarray, np.ndarray]:
        """Matrices ``(C_true, C_false)`` of pairwise correlation factors.

        Entry ``[i, j]`` is ``C_{ij}`` (resp. ``C!_{ij}``); the diagonal is
        left at 1.  Used for correlation-based source clustering (Section 5).
        On models with batch support every pair's joint parameters come
        from one :meth:`joint_params_batch` call (the O(n^2) scalar subset
        queries dominated clustered-fuser fit time on wide grids); the
        factor arithmetic replays the scalar expressions on those values,
        so both paths agree bit-for-bit.
        """
        n = self.n_sources
        c_true = np.ones((n, n))
        c_false = np.ones((n, n))
        batch = self.pair_joint_params()
        if batch is not None:
            pairs, r_pairs, q_pairs = batch
            for k, (i, j) in enumerate(pairs):
                independent_r = float(
                    np.prod([self.recall(i), self.recall(j)])
                )
                independent_q = float(np.prod([self.fpr(i), self.fpr(j)]))
                c_true[i, j] = c_true[j, i] = safe_divide(
                    float(r_pairs[k]), independent_r, default=1.0
                )
                c_false[i, j] = c_false[j, i] = safe_divide(
                    float(q_pairs[k]), independent_q, default=1.0
                )
            return c_true, c_false
        for i in range(n):
            for j in range(i + 1, n):
                c_true[i, j] = c_true[j, i] = self.correlation_true([i, j])
                c_false[i, j] = c_false[j, i] = self.correlation_false([i, j])
        return c_true, c_false


class MaskedJointCache:
    """Bitmask-keyed memo of ``(joint_recall, joint_fpr)`` model look-ups.

    The inclusion-exclusion fusers issue millions of subset queries while
    scoring; the dominant cost of a *cached* query through the set-keyed
    interface is building and hashing a frozenset.  The vectorized engine
    identifies a subset by an int bitmask instead -- int hashing is several
    times cheaper -- and falls through to the wrapped model only on the
    first sighting of a mask.  Values are exactly the model's own, so the
    legacy and vectorized engines stay bit-identical.

    The cache is safe under concurrent scoring: a lock guards the size
    check and store (reads are plain dict look-ups, atomic under the GIL).
    Model values are deterministic, so two threads racing on the same
    first-sighted mask compute the same tuple and either store wins --
    no torn or mixed reads are possible.

    Diagnostics: ``hits`` / ``misses`` / ``evictions`` counters (surfaced
    through :attr:`stats`, mirroring
    :class:`~repro.core.plans.CompiledPlanCache`) feed ``ServingReport``
    and ``fuse --repeat`` output.  The hit/miss increments are deliberately
    unlocked -- the get path is the hottest loop in the scalar fallbacks,
    and a lost increment under a thread race only nudges a diagnostic.
    Beyond ``max_entries`` the oldest-inserted entry is evicted (values are
    deterministic, so a re-sighted mask recomputes bit-identically).
    """

    __slots__ = (
        "_model", "_cache", "_max_entries", "_lock",
        "hits", "misses", "evictions",
    )

    def __init__(
        self, model: "JointQualityModel", max_entries: int = 1_000_000
    ) -> None:
        if max_entries < 0:
            raise ValueError(
                f"max_entries must be non-negative, got {max_entries}"
            )
        self._model = model
        self._cache: dict[int, tuple[float, float]] = {}
        self._max_entries = int(max_entries)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    def clear(self) -> None:
        """Drop every memoised look-up (the model-refit hook); stats survive."""
        with self._lock:
            self._cache.clear()

    @property
    def stats(self) -> dict:
        """Counters for serving diagnostics (see ``ServingReport``)."""
        with self._lock:
            return {
                "entries": len(self._cache),
                "max_entries": self._max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def get(self, mask: int, source_ids: Sequence[int]) -> tuple[float, float]:
        """``(r_{S*}, q_{S*})`` for the subset with bitmask ``mask``.

        ``source_ids`` must list exactly the bits set in ``mask``; it is
        consulted only on a cache miss (the mask alone is the key).  The
        model query runs outside the lock -- a racing duplicate compute is
        deterministic and benign, and holding the lock through it would
        serialise every parallel scalar-fallback worker.
        """
        value = self._cache.get(mask)
        if value is None:
            self.misses += 1
            value = (
                self._model.joint_recall(source_ids),
                self._model.joint_fpr(source_ids),
            )
            with self._lock:
                cache = self._cache
                if self._max_entries > 0:
                    while len(cache) >= self._max_entries:
                        del cache[next(iter(cache))]
                        self.evictions += 1
                    cache[mask] = value
        else:
            self.hits += 1
        return value

    def __getstate__(self) -> dict:
        # The lock is process-local; a pickled cache (process-backend jobs
        # carry their fuser) starts empty.
        return {"model": self._model, "max_entries": self._max_entries}

    def __setstate__(self, state: dict) -> None:
        self._model = state["model"]
        self._cache = {}
        self._max_entries = state["max_entries"]
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class EmpiricalJointModel(JointQualityModel):
    """Joint parameters measured from labelled training data.

    Parameters
    ----------
    observations:
        Training observation matrix.
    labels:
        Gold truth per triple (boolean, one per matrix column).
    prior:
        ``alpha``.  Pass :func:`repro.core.quality.estimate_prior` output to
        use the labelled truth fraction.
    smoothing:
        Laplace pseudo-count applied to all joint precision/recall ratios;
        ``0`` reproduces the paper's example tables exactly.
    max_cache_entries:
        Memoisation cap per parameter family.  Wide datasets (BOOK-scale)
        touch millions of distinct subsets during inclusion-exclusion;
        beyond the cap values are recomputed instead of stored, bounding
        memory at a small constant factor of the cap.
    engine:
        ``"vectorized"`` (default) answers every subset-intersection query
        from bit-packed uint64 words with popcounts; ``"legacy"`` uses the
        seed's full-width boolean-mask reductions.  Both produce identical
        integer counts, hence identical parameters.
    workers:
        Worker threads for :meth:`joint_params_batch`: requests larger
        than one chunk are fanned across a reusable pool (the popcount
        kernels release the GIL) and reassembled in chunk order, so
        results stay bit-identical to the serial sweep.  ``None`` consults
        ``REPRO_DEFAULT_WORKERS`` (library default: 1, serial).  The model
        owns its own pool, distinct from any fuser's, so nested dispatch
        (a cluster job requesting a batch) cannot deadlock.
    """

    def __init__(
        self,
        observations: ObservationMatrix,
        labels: np.ndarray,
        prior: float = 0.5,
        smoothing: float = 0.0,
        max_cache_entries: int = 200_000,
        engine: str = "vectorized",
        workers: Optional[int] = None,
    ) -> None:
        super().__init__(observations.source_names, prior)
        labels = np.asarray(labels, dtype=bool)
        if labels.shape != (observations.n_triples,):
            raise ValueError(
                f"labels shape {labels.shape} != ({observations.n_triples},)"
            )
        if smoothing < 0:
            raise ValueError(f"smoothing must be non-negative, got {smoothing}")
        if max_cache_entries < 0:
            raise ValueError(
                f"max_cache_entries must be non-negative, got {max_cache_entries}"
            )
        self._engine = check_engine(engine)
        self._executor = make_executor(workers)
        self._observations = observations
        self._labels = labels
        self._smoothing = float(smoothing)
        self._max_cache = int(max_cache_entries)
        self._n_true = int(labels.sum())
        self._singletons = estimate_source_quality(
            observations, labels, prior=prior, smoothing=smoothing
        )
        self._partial_coverage = observations.has_partial_coverage
        if self._engine == "vectorized":
            self._true_words = pack_bool_vector(labels)
            self._false_words = pack_bool_vector(~labels)
        self._recall_cache: dict[SubsetKey, float] = {}
        self._fpr_cache: dict[SubsetKey, float] = {}
        self._precision_cache: dict[SubsetKey, float] = {}
        self._coverage_cache: dict[SubsetKey, tuple[int, int]] = {}

    @property
    def engine(self) -> str:
        """The subset-statistics engine this model answers queries with."""
        return self._engine

    def close(self) -> None:
        """Shut down the model's batch-evaluation pool (idempotent).

        ``ScoringSession.refit`` calls this on the retired model; the GC
        finalizer would reclaim an unclosed pool eventually, but serving
        processes should not carry retired executors until then.  A closed
        model keeps answering every query -- batch chunks just run inline.
        """
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "EmpiricalJointModel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- estimation ----------------------------------------------------
    #
    # All joint parameters are *scope-aware*: they are estimated over the
    # subset's joint coverage, i.e. the triples every member could have
    # provided.  Under full coverage this reduces to the plain global
    # fractions the paper's examples use; with partial coverage it keeps the
    # joint estimates consistent with the (already scope-aware) singleton
    # quality, without which every pair of narrow-scope sources would look
    # spuriously anti-correlated.

    def _intersection_counts(self, key: SubsetKey) -> tuple[int, int]:
        """``(provided_true, provided_false)`` of the subset's intersection.

        The vectorized engine ANDs the subset's bit-packed provider rows and
        popcounts through the packed label masks; the legacy engine reduces
        full-width boolean masks.  Both return identical integers.
        """
        ids = sorted(key)
        if self._engine == "vectorized":
            words = self._observations.packed_provides.and_reduce(ids)
            return (
                popcount(words & self._true_words),
                popcount(words & self._false_words),
            )
        mask = self._observations.subset_intersection(ids)
        return (
            int((mask & self._labels).sum()),
            int((mask & ~self._labels).sum()),
        )

    def joint_precision(self, source_ids: Iterable[int]) -> float:
        """``p_{S*}``: labelled-true fraction of the subset's intersection."""
        key = _as_key(source_ids)
        if not key:
            return 1.0
        cached = self._precision_cache.get(key)
        if cached is not None:
            return cached
        provided_true, provided_false = self._intersection_counts(key)
        value = self._ratio(provided_true, provided_true + provided_false)
        self._store(self._precision_cache, key, value)
        return value

    def joint_recall(self, source_ids: Iterable[int]) -> float:
        key = _as_key(source_ids)
        if not key:
            return 1.0
        cached = self._recall_cache.get(key)
        if cached is not None:
            return cached
        provided_true, _ = self._intersection_counts(key)
        covered_true, _ = self.joint_coverage_counts(key)
        value = self._ratio(provided_true, covered_true)
        self._store(self._recall_cache, key, value)
        return value

    def joint_fpr(self, source_ids: Iterable[int]) -> float:
        """``q_{S*}`` derived from joint precision/recall (Theorem 3.5).

        When the subset's intersection is entirely false (joint precision 0,
        where the derivation degenerates) we fall back to the direct count
        of jointly-provided false triples -- the only estimate available,
        and exactly the signal that matters for sources correlated on
        mistakes (Scenario 3 of Example 4.1).
        """
        key = _as_key(source_ids)
        if not key:
            return 1.0
        cached = self._fpr_cache.get(key)
        if cached is not None:
            return cached
        precision = self.joint_precision(key)
        if precision > 0.0:
            value = derive_false_positive_rate(
                precision, self.joint_recall(key), self.prior, clip=True
            )
        else:
            _, provided_false = self._intersection_counts(key)
            _, covered_false = self.joint_coverage_counts(key)
            value = self._ratio(provided_false, covered_false)
        self._store(self._fpr_cache, key, value)
        return value

    def joint_coverage_counts(self, source_ids: Iterable[int]) -> tuple[int, int]:
        """``(covered_true, covered_false)`` for the subset's joint scope."""
        key = _as_key(source_ids)
        if not self._partial_coverage or not key:
            return self.evidence_counts()
        cached = self._coverage_cache.get(key)
        if cached is not None:
            return cached
        ids = sorted(key)
        if self._engine == "vectorized":
            words = self._observations.packed_coverage.and_reduce(ids)
            value = (
                popcount(words & self._true_words),
                popcount(words & self._false_words),
            )
        else:
            mask = self._observations.subset_coverage(ids)
            value = (
                int((mask & self._labels).sum()),
                int((mask & ~self._labels).sum()),
            )
        if len(self._coverage_cache) < self._max_cache:
            self._coverage_cache[key] = value
        return value

    def joint_params_batch(
        self, subsets: np.ndarray
    ) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """Vectorized ``(r_{S*}, q_{S*})`` for many subsets in bulk.

        The intersection words of *all* requested subsets are computed with
        one pass per source row (:meth:`PackedMatrix.and_reduce_batch`), the
        counts with vectorized popcounts, and the Theorem 3.5 derivation
        element-wise in the same operation order as the scalar path -- so
        every returned value is bit-identical to the corresponding
        :meth:`joint_recall` / :meth:`joint_fpr` call.  Returns ``None`` on
        the legacy engine (callers then fall back to scalar queries).
        """
        if self._engine != "vectorized":
            return None
        subsets = np.asarray(subsets, dtype=bool)
        if subsets.ndim != 2 or subsets.shape[1] != self.n_sources:
            raise ValueError(
                f"subsets shape {subsets.shape} != (n_subsets, {self.n_sources})"
            )
        n_subsets = subsets.shape[0]
        recalls = np.empty(n_subsets, dtype=float)
        fprs = np.empty(n_subsets, dtype=float)
        starts = range(0, n_subsets, _BATCH_CHUNK)
        if self._executor is not None and len(starts) > 1:
            # Fan the (element-wise independent) chunks across the model's
            # pool and reassemble in chunk order -- bit-identical to the
            # serial sweep, since chunk boundaries are unchanged.
            chunks = self._executor.map(
                lambda start: self._params_chunk(
                    subsets[start : min(start + _BATCH_CHUNK, n_subsets)]
                ),
                list(starts),
            )
            for start, (chunk_r, chunk_q) in zip(starts, chunks):
                stop = min(start + _BATCH_CHUNK, n_subsets)
                recalls[start:stop] = chunk_r
                fprs[start:stop] = chunk_q
            return recalls, fprs
        for start in starts:
            stop = min(start + _BATCH_CHUNK, n_subsets)
            recalls[start:stop], fprs[start:stop] = self._params_chunk(
                subsets[start:stop]
            )
        return recalls, fprs

    def _params_chunk(
        self, subsets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        observations = self._observations
        intersection = observations.packed_provides.and_reduce_batch(subsets)
        provided_true = popcount_rows(intersection & self._true_words)
        provided_false = popcount_rows(intersection & self._false_words)
        if self._partial_coverage:
            covered = observations.packed_coverage.and_reduce_batch(subsets)
            covered_true = popcount_rows(covered & self._true_words)
            covered_false = popcount_rows(covered & self._false_words)
        else:
            n_true, n_false = self.evidence_counts()
            covered_true = np.full(len(subsets), n_true, dtype=np.int64)
            covered_false = np.full(len(subsets), n_false, dtype=np.int64)

        recall = self._ratio_vec(provided_true, covered_true)
        precision = self._ratio_vec(provided_true, provided_true + provided_false)
        # Theorem 3.5 with clip=True, element-wise in the scalar expression's
        # evaluation order (left-to-right), so values match bit-for-bit.
        prior_ratio = self.prior / (1.0 - self.prior)
        with np.errstate(divide="ignore", invalid="ignore"):
            derived = prior_ratio * (1.0 - precision) / precision * recall
        derived = np.where(derived > 1.0, 1.0, derived)
        fallback = self._ratio_vec(provided_false, covered_false)
        fpr = np.where(precision > 0.0, derived, fallback)

        empty = ~subsets.any(axis=1)
        recall = np.where(empty, 1.0, recall)
        fpr = np.where(empty, 1.0, fpr)
        return recall, fpr

    def _ratio_vec(
        self, numerator: np.ndarray, denominator: np.ndarray
    ) -> np.ndarray:
        """Element-wise :meth:`_ratio` (same smoothing, same 0/0 rule)."""
        s = self._smoothing
        den = denominator + 2.0 * s
        with np.errstate(divide="ignore", invalid="ignore"):
            out = (numerator + s) / den
        return np.where(den == 0.0, 0.0, out)

    def source_quality(self, source_id: int) -> SourceQuality:
        return self._singletons[int(source_id)]

    def source_qualities(self) -> list[SourceQuality]:
        """All singleton qualities in row order."""
        return list(self._singletons)

    def evidence_counts(self) -> tuple[int, int]:
        n_false = int((~self._labels).sum())
        return self._n_true, n_false

    def _ratio(self, numerator: int, denominator: int) -> float:
        s = self._smoothing
        if denominator + 2.0 * s == 0.0:
            return 0.0
        return (numerator + s) / (denominator + 2.0 * s)

    def _store(self, cache: dict[SubsetKey, float], key: SubsetKey, value: float) -> None:
        if len(cache) < self._max_cache:
            cache[key] = value


class ExplicitJointModel(JointQualityModel):
    """Joint parameters supplied directly by the caller.

    Unspecified subsets default to independence products of the singleton
    parameters, so a partially-specified model degrades gracefully.  This is
    the vehicle for the paper's worked examples, where joint recalls such as
    ``r_1245 = 0.22`` are given rather than measured.
    """

    def __init__(
        self,
        qualities: Sequence[SourceQuality],
        prior: float = 0.5,
        joint_recalls: Optional[Mapping[frozenset[int], float]] = None,
        joint_fprs: Optional[Mapping[frozenset[int], float]] = None,
    ) -> None:
        super().__init__([q.name for q in qualities], prior)
        self._qualities = list(qualities)
        self._recalls = {_as_key(k): float(v) for k, v in (joint_recalls or {}).items()}
        self._fprs = {_as_key(k): float(v) for k, v in (joint_fprs or {}).items()}
        for key in list(self._recalls) + list(self._fprs):
            for i in key:
                if not 0 <= i < self.n_sources:
                    raise ValueError(f"joint parameter names unknown source id {i}")

    def joint_recall(self, source_ids: Iterable[int]) -> float:
        key = _as_key(source_ids)
        if not key:
            return 1.0
        if key in self._recalls:
            return self._recalls[key]
        if len(key) == 1:
            return self._qualities[next(iter(key))].recall
        return float(np.prod([self.joint_recall([i]) for i in key]))

    def joint_fpr(self, source_ids: Iterable[int]) -> float:
        key = _as_key(source_ids)
        if not key:
            return 1.0
        if key in self._fprs:
            return self._fprs[key]
        if len(key) == 1:
            return self._qualities[next(iter(key))].false_positive_rate
        return float(np.prod([self.joint_fpr([i]) for i in key]))

    def source_quality(self, source_id: int) -> SourceQuality:
        return self._qualities[int(source_id)]


class IndependentJointModel(ExplicitJointModel):
    """A joint model that *assumes* independence everywhere.

    Feeding this into the exact correlation fuser must reproduce the
    independent PrecRec result (Corollary 4.3); the equivalence is asserted
    in the test suite.
    """

    def __init__(self, qualities: Sequence[SourceQuality], prior: float = 0.5) -> None:
        super().__init__(qualities, prior=prior, joint_recalls=None, joint_fprs=None)
