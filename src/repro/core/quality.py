"""Source-quality estimation: precision, recall, false-positive rate.

Implements Section 3.2 of the paper.  Precision and recall are measured
directly on labelled training data; the false-positive rate ``q_i`` is *not*
measured by counting (Example 3.4 shows that makes a source's quality depend
on how bad the other sources are) but derived from precision and recall via
Bayes' rule (Theorem 3.5):

    q_i = alpha / (1 - alpha) * (1 - p_i) / p_i * r_i

which is a valid rate (``q_i <= 1``) whenever
``alpha <= p_i / (p_i + r_i - p_i * r_i)``, and classifies ``S_i`` as a
*good* source (``q_i < r_i``) exactly when ``p_i > alpha``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.observations import ObservationMatrix
from repro.util.probability import clamp_probability
from repro.util.validation import check_fraction, check_probability


@dataclass(frozen=True)
class SourceQuality:
    """Quality parameters of a single source.

    Attributes
    ----------
    name:
        Source name (matches the observation-matrix row).
    precision:
        ``p_i = Pr(t | S_i |= t)`` -- fraction of provided triples that are
        true (Eq. 1).
    recall:
        ``r_i = Pr(S_i |= t | t)`` -- fraction of true triples provided
        (Eq. 2), computed within the source's scope when coverage is partial.
    false_positive_rate:
        ``q_i = Pr(S_i |= t | not t)`` derived per Theorem 3.5.
    """

    name: str
    precision: float
    recall: float
    false_positive_rate: float

    def __post_init__(self) -> None:
        check_probability(self.precision, "precision")
        check_probability(self.recall, "recall")
        check_probability(self.false_positive_rate, "false_positive_rate")

    @property
    def is_good(self) -> bool:
        """A *good* source provides true triples more readily than false ones.

        Formally ``r_i > q_i`` (Section 3.1); by Theorem 3.5 this holds
        whenever ``p_i > alpha`` for the alpha used in the derivation.
        """
        return self.recall > self.false_positive_rate

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (for reporting)."""
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


def fpr_validity_bound(precision: float, recall: float) -> float:
    """Largest prior ``alpha`` for which Theorem 3.5 yields ``q_i <= 1``.

    The bound is ``p / (p + r - p * r)``; priors above it would imply a
    false-positive rate exceeding 1, i.e. the stated (p, r, alpha) triple is
    jointly infeasible.
    """
    check_probability(precision, "precision")
    check_probability(recall, "recall")
    denominator = precision + recall - precision * recall
    if denominator == 0.0:
        return 1.0  # p = r = 0: any alpha "works" because q = 0 regardless
    return precision / denominator


def derive_false_positive_rate(
    precision: float,
    recall: float,
    prior: float,
    clip: bool = True,
) -> float:
    """Derive ``q_i`` from precision and recall (Theorem 3.5).

    Parameters
    ----------
    precision, recall:
        The source's measured quality.
    prior:
        The a-priori truth probability ``alpha``.
    clip:
        When true (default) an infeasible combination -- ``alpha`` above
        :func:`fpr_validity_bound` -- is clipped to ``q = 1``; when false it
        raises ``ValueError``.  Clipping matches how the estimator copes with
        noisy empirical inputs; strict mode supports the theory tests.
    """
    check_probability(precision, "precision")
    check_probability(recall, "recall")
    check_fraction(prior, "prior")
    if precision == 0.0:
        # A source that is never right: its provisions are all false
        # positives.  The limit of the formula as p -> 0 is +infinity; the
        # honest rate cannot exceed 1.
        if clip:
            return 1.0
        raise ValueError("false-positive rate undefined for precision = 0")
    q = prior / (1.0 - prior) * (1.0 - precision) / precision * recall
    if q > 1.0:
        if clip or q <= 1.0 + 1e-9:  # tolerate float round-off at the bound
            return 1.0
        raise ValueError(
            f"prior {prior} exceeds validity bound "
            f"{fpr_validity_bound(precision, recall):.6f} for "
            f"precision={precision}, recall={recall}"
        )
    return q


def quality_from_counts(
    name: str,
    provided: int,
    provided_true: int,
    in_scope_true: int,
    prior: float = 0.5,
    smoothing: float = 0.0,
) -> SourceQuality:
    """Build a :class:`SourceQuality` from its three sufficient statistics.

    ``estimate_source_quality`` is exactly this applied to the counts it
    measures per row; the incremental refit path
    (:meth:`~repro.core.joint.EmpiricalJointModel.refit_delta`) maintains
    the same integer counts via popcount deltas and re-derives qualities
    through this shared code path, which is what makes delta-refit models
    bit-identical to cold ones.
    """
    precision = _smoothed_ratio(provided_true, provided, smoothing)
    recall = _smoothed_ratio(provided_true, in_scope_true, smoothing)
    fpr = derive_false_positive_rate(precision, recall, prior, clip=True)
    return SourceQuality(
        name=name,
        precision=precision,
        recall=recall,
        false_positive_rate=fpr,
    )


def estimate_source_quality(
    observations: ObservationMatrix,
    labels: np.ndarray,
    prior: float = 0.5,
    smoothing: float = 0.0,
) -> list[SourceQuality]:
    """Measure every source's precision/recall on labelled data.

    Parameters
    ----------
    observations:
        The full observation matrix (training portion).
    labels:
        Boolean array of shape ``(n_triples,)`` giving the gold truth of each
        triple.  Following Section 3.2, the set of true triples used for
        recall is the set of *provided* true triples -- anything labelled
        true here is by construction provided by at least one source.
    prior:
        ``alpha``, used to derive the false-positive rate.
    smoothing:
        Laplace pseudo-count added to numerator and denominator of both
        precision and recall.  ``0`` reproduces the paper's numbers exactly;
        a small positive value (e.g. 0.1) keeps rates off the 0/1 endpoints
        on sparse data.

    Returns
    -------
    One :class:`SourceQuality` per source, in row order.
    """
    labels = np.asarray(labels, dtype=bool)
    if labels.shape != (observations.n_triples,):
        raise ValueError(
            f"labels shape {labels.shape} != ({observations.n_triples},)"
        )
    if smoothing < 0:
        raise ValueError(f"smoothing must be non-negative, got {smoothing}")
    check_fraction(prior, "prior")

    provides = observations.provides
    coverage = observations.coverage
    qualities: list[SourceQuality] = []
    for i, name in enumerate(observations.source_names):
        row = provides[i]
        qualities.append(
            quality_from_counts(
                name=name,
                provided=int(row.sum()),
                provided_true=int((row & labels).sum()),
                # Scope-aware recall: only true triples the source covers
                # count against it (Section 2.2's "scope" note).
                in_scope_true=int((coverage[i] & labels).sum()),
                prior=prior,
                smoothing=smoothing,
            )
        )
    return qualities


def estimate_prior(labels: np.ndarray, smoothing: float = 0.0) -> float:
    """Estimate ``alpha`` as the labelled fraction of true triples.

    Section 3.1: "the a-priori probability alpha can be derived from a
    training set".
    """
    labels = np.asarray(labels, dtype=bool)
    if labels.size == 0:
        return 0.5
    alpha = _smoothed_ratio(labels.sum(), labels.size, smoothing)
    return clamp_probability(alpha, floor=1e-6)


def _smoothed_ratio(numerator: float, denominator: float, smoothing: float) -> float:
    """``(num + s) / (den + 2s)``; 0/0 resolves to 0 without smoothing."""
    if denominator + 2.0 * smoothing == 0.0:
        return 0.0
    return float((numerator + smoothing) / (denominator + 2.0 * smoothing))
