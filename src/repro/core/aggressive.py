"""The aggressive approximation of PrecRecCorr (Section 4.2, Definition 4.5).

Under partial-independence assumptions (Eq. 18-19) the exponential
inclusion-exclusion sum collapses back into a per-source product: each
recall ``r_i`` is replaced by ``C+_i r_i`` and each false-positive rate
``q_i`` by ``C-_i q_i``, where

    C+_i = r_{1..n} / (r_i * r_{S minus i})     (Eq. 14)
    C-_i = q_{1..n} / (q_i * q_{S minus i})     (Eq. 15)

so the whole computation is linear in the number of sources and needs only
``2n + 1`` correlation parameters.

The price (Proposition 4.8): with extreme correlation the approximation
degrades -- replicas of one source yield the uninformative prior ``alpha``
for every triple, and pairwise-complementary sources can make a factor
``C+_i r_i`` exceed 1, turning a silent-source term ``(1 - C+_i r_i)``
negative and the "probability" invalid.  ``mu`` is reported raw so callers
(and the test for Proposition 4.8) can observe the failure; the posterior
transform maps non-positive ``mu`` to ~0.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.fusion import ModelBasedFuser
from repro.core.joint import JointQualityModel


class AggressiveFuser(ModelBasedFuser):
    """The paper's linear-time aggressive approximation (Definition 4.5).

    Parameters
    ----------
    model:
        Joint quality model; only ``r_i``, ``q_i`` and the two aggressive
        factor vectors are consulted.
    universe:
        Source ids over which the factors ``C+_i, C-_i`` are defined;
        defaults to all of the model's sources.  The clustered fuser passes
        each cluster here so factors are relative to the cluster.
    """

    name = "PrecRecCorr-Aggressive"

    def __init__(
        self,
        model: JointQualityModel,
        universe: Optional[Sequence[int]] = None,
        decision_prior: Optional[float] = None,
    ) -> None:
        super().__init__(model, decision_prior=decision_prior)
        ids = list(range(model.n_sources)) if universe is None else list(universe)
        c_plus, c_minus = model.aggressive_factors(ids)
        # Effective per-source rates, indexed by absolute source id.
        self._eff_recall: dict[int, float] = {}
        self._eff_fpr: dict[int, float] = {}
        for k, i in enumerate(ids):
            self._eff_recall[i] = float(c_plus[k]) * model.recall(i)
            self._eff_fpr[i] = float(c_minus[k]) * model.fpr(i)

    def effective_rates(self, source_id: int) -> tuple[float, float]:
        """``(C+_i r_i, C-_i q_i)`` for one source -- exposed for inspection.

        Values above 1 signal the anti-correlation degeneracy of
        Proposition 4.8.
        """
        return self._eff_recall[source_id], self._eff_fpr[source_id]

    def pattern_mu(self, providers: frozenset[int], silent: frozenset[int]) -> float:
        numerator = 1.0
        denominator = 1.0
        for i in providers:
            numerator *= self._eff_recall[i]
            denominator *= self._eff_fpr[i]
        for i in silent:
            numerator *= 1.0 - self._eff_recall[i]
            denominator *= 1.0 - self._eff_fpr[i]
        if denominator == 0.0:
            return float("inf") if numerator > 0 else 0.0
        return numerator / denominator
