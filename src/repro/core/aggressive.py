"""The aggressive approximation of PrecRecCorr (Section 4.2, Definition 4.5).

Under partial-independence assumptions (Eq. 18-19) the exponential
inclusion-exclusion sum collapses back into a per-source product: each
recall ``r_i`` is replaced by ``C+_i r_i`` and each false-positive rate
``q_i`` by ``C-_i q_i``, where

    C+_i = r_{1..n} / (r_i * r_{S minus i})     (Eq. 14)
    C-_i = q_{1..n} / (q_i * q_{S minus i})     (Eq. 15)

so the whole computation is linear in the number of sources and needs only
``2n + 1`` correlation parameters.

The price (Proposition 4.8): with extreme correlation the approximation
degrades -- replicas of one source yield the uninformative prior ``alpha``
for every triple, and pairwise-complementary sources can make a factor
``C+_i r_i`` exceed 1, turning a silent-source term ``(1 - C+_i r_i)``
negative and the "probability" invalid.  ``mu`` is reported raw so callers
(and the test for Proposition 4.8) can observe the failure; the posterior
transform maps non-positive ``mu`` to ~0.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.fusion import DEFAULT_MU_CACHE_ENTRIES, ModelBasedFuser
from repro.core.joint import JointQualityModel
from repro.core.patterns import PatternSet


def _signed_log(values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decompose reals into ``(log |x|, x < 0, x == 0)`` for batch products.

    The aggressive factors can push an effective rate past 1, making a
    silent-source term ``(1 - C+_i r_i)`` negative (Proposition 4.8), so a
    plain log-space product is not enough: magnitude, sign parity, and
    exact zeros are tracked separately.
    """
    magnitudes = np.abs(values)
    zeros = magnitudes == 0.0
    with np.errstate(divide="ignore"):
        logs = np.where(zeros, 0.0, np.log(np.where(zeros, 1.0, magnitudes)))
    return logs, values < 0.0, zeros


class AggressiveFuser(ModelBasedFuser):
    """The paper's linear-time aggressive approximation (Definition 4.5).

    Parameters
    ----------
    model:
        Joint quality model; only ``r_i``, ``q_i`` and the two aggressive
        factor vectors are consulted.
    universe:
        Source ids over which the factors ``C+_i, C-_i`` are defined;
        defaults to all of the model's sources.  The clustered fuser passes
        each cluster here so factors are relative to the cluster.
    engine, max_cache_entries:
        Execution engine switch and per-pattern memo cap -- see
        :class:`repro.core.fusion.ModelBasedFuser`.
    """

    name = "PrecRecCorr-Aggressive"

    def __init__(
        self,
        model: JointQualityModel,
        universe: Optional[Sequence[int]] = None,
        decision_prior: Optional[float] = None,
        engine: str = "vectorized",
        max_cache_entries: int = DEFAULT_MU_CACHE_ENTRIES,
        workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        parallel_backend: str = "thread",
    ) -> None:
        # Accepted for API uniformity (make_fuser forwards the knobs to
        # every model-based fuser); the aggressive batch path is a handful
        # of matrix products, so no sharded dispatch is wired here.
        super().__init__(
            model,
            decision_prior=decision_prior,
            engine=engine,
            max_cache_entries=max_cache_entries,
            workers=workers,
            shard_size=shard_size,
            parallel_backend=parallel_backend,
        )
        ids = list(range(model.n_sources)) if universe is None else list(universe)
        self._covers_all_sources = sorted(ids) == list(range(model.n_sources))
        c_plus, c_minus = model.aggressive_factors(ids)
        # Effective per-source rates, indexed by absolute source id.
        self._eff_recall: dict[int, float] = {}
        self._eff_fpr: dict[int, float] = {}
        for k, i in enumerate(ids):
            self._eff_recall[i] = float(c_plus[k]) * model.recall(i)
            self._eff_fpr[i] = float(c_minus[k]) * model.fpr(i)

    def effective_rates(self, source_id: int) -> tuple[float, float]:
        """``(C+_i r_i, C-_i q_i)`` for one source -- exposed for inspection.

        Values above 1 signal the anti-correlation degeneracy of
        Proposition 4.8.
        """
        return self._eff_recall[source_id], self._eff_fpr[source_id]

    def pattern_mu(self, providers: frozenset[int], silent: frozenset[int]) -> float:
        numerator = 1.0
        denominator = 1.0
        for i in providers:
            numerator *= self._eff_recall[i]
            denominator *= self._eff_fpr[i]
        for i in silent:
            numerator *= 1.0 - self._eff_recall[i]
            denominator *= 1.0 - self._eff_fpr[i]
        if denominator == 0.0:
            return float("inf") if numerator > 0 else 0.0
        return numerator / denominator

    def pattern_mu_batch(self, patterns: PatternSet) -> Optional[np.ndarray]:
        """All pattern ``mu`` values via sign-tracked log-space products.

        Only available when the factor universe covers every source (the
        standalone configuration); with a restricted universe the engine
        falls back to the per-pattern path, whose semantics (including the
        deliberate ``KeyError`` on out-of-universe sources) are preserved.
        """
        if not self._covers_all_sources:
            return None
        n = self.model.n_sources
        eff_r = np.array([self._eff_recall[i] for i in range(n)], dtype=float)
        eff_q = np.array([self._eff_fpr[i] for i in range(n)], dtype=float)
        numerator = self._batch_product(patterns, eff_r, 1.0 - eff_r)
        denominator = self._batch_product(patterns, eff_q, 1.0 - eff_q)
        zero_den = denominator == 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            mu = np.where(zero_den, 1.0, numerator) / np.where(
                zero_den, 1.0, denominator
            )
        return np.where(
            zero_den, np.where(numerator > 0, np.inf, 0.0), mu
        )

    @staticmethod
    def _batch_product(
        patterns: PatternSet,
        provider_factors: np.ndarray,
        silent_factors: np.ndarray,
    ) -> np.ndarray:
        """``prod_{i in providers} a_i * prod_{i in silent} b_i`` per pattern."""
        log_p, neg_p, zero_p = _signed_log(provider_factors)
        log_s, neg_s, zero_s = _signed_log(silent_factors)
        provider = patterns.provider_matrix
        silent = patterns.silent_matrix
        log_magnitude = provider @ log_p + silent @ log_s
        negatives = provider @ neg_p.astype(np.int64) + silent @ neg_s.astype(
            np.int64
        )
        has_zero = (
            provider @ zero_p.astype(np.int64) + silent @ zero_s.astype(np.int64)
        ) > 0
        with np.errstate(over="ignore"):
            magnitude = np.exp(log_magnitude)
        signed = np.where(negatives % 2 == 1, -magnitude, magnitude)
        return np.where(has_zero, 0.0, signed)
