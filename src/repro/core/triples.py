"""Knowledge-triple data model.

The paper's unit of data is a *triple*: a ``{subject, predicate, object}``
statement such as ``{Obama, profession, president}``, or equivalently a cell
``{row-entity, column-attribute, value}`` of a database table (Section 2.1).
Truthfulness is judged per triple, independently of other triples
(independent-triple semantics), and a source that does not output a triple is
agnostic about it (open-world semantics).

A triple optionally carries a ``domain`` label.  The domain models the
"scope" discussion of Section 2.2: a source should only be penalised for not
providing a triple when the triple falls inside the part of the world the
source actually covers (e.g. a source listing only Obama facts is not
penalised for missing Bush facts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional


@dataclass(frozen=True, order=True)
class Triple:
    """An immutable knowledge triple.

    Attributes
    ----------
    subject:
        The entity the statement is about (``Obama``).
    predicate:
        The attribute or relation (``profession``).
    obj:
        The value (``president``).
    domain:
        Optional scope label used for scope-aware recall; defaults to the
        subject, which matches the common "per row-entity" notion of scope.
    """

    subject: str
    predicate: str
    obj: str
    domain: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        for attr in ("subject", "predicate", "obj"):
            value = getattr(self, attr)
            if not isinstance(value, str) or not value:
                raise ValueError(f"Triple.{attr} must be a non-empty string, got {value!r}")
        if self.domain is None:
            object.__setattr__(self, "domain", self.subject)

    @property
    def key(self) -> tuple[str, str, str]:
        """Identity of the triple: ``(subject, predicate, obj)``.

        The domain is deliberately excluded -- two sources asserting the same
        fact refer to the same triple even if loaded with different scope
        metadata.
        """
        return (self.subject, self.predicate, self.obj)

    @property
    def data_item(self) -> tuple[str, str]:
        """The ``(subject, predicate)`` pair this triple gives a value for.

        Closed-world, single-truth baselines (e.g. AccuVote) group triples by
        data item: under that semantics at most one value per item is true.
        """
        return (self.subject, self.predicate)

    def __str__(self) -> str:
        return f"{{{self.subject}, {self.predicate}, {self.obj}}}"


class TripleIndex:
    """A bidirectional mapping between triples and dense integer ids.

    The fusion algorithms operate on a dense boolean matrix; this index pins
    down the column order and lets callers translate back and forth.  Ids are
    assigned in first-seen order, so building an index from a stable iterable
    is deterministic.
    """

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: list[Triple] = []
        self._ids: dict[tuple[str, str, str], int] = {}
        for triple in triples:
            self.add(triple)

    def add(self, triple: Triple) -> int:
        """Insert ``triple`` if unseen and return its id."""
        existing = self._ids.get(triple.key)
        if existing is not None:
            return existing
        new_id = len(self._triples)
        self._triples.append(triple)
        self._ids[triple.key] = new_id
        return new_id

    def id_of(self, triple: Triple) -> int:
        """Return the id of ``triple``; raise ``KeyError`` if absent."""
        return self._ids[triple.key]

    def __getitem__(self, triple_id: int) -> Triple:
        return self._triples[triple_id]

    def __contains__(self, triple: Triple) -> bool:
        return triple.key in self._ids

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    @property
    def triples(self) -> tuple[Triple, ...]:
        """All indexed triples in id order."""
        return tuple(self._triples)
