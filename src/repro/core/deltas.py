"""Incremental delta scoring: work per request proportional to what changed.

Streaming serving traffic rarely scores *new* matrices -- consecutive
requests differ from the previous one by a handful of triple columns (a few
sources asserted or retracted a few claims).  The compile-once/execute-many
and sharded layers (PR 3/4) made repeated scoring of the *same* matrix
cheap, but a matrix that differs by one triple changes the pattern digest
and re-runs pattern extraction, plan compilation, and model evaluation from
scratch.  This module closes that gap with three reuse levels:

1. **word-level diffing** (:func:`dirty_columns`) -- consecutive packed
   observation matrices are XORed at the ``uint64`` word level; a request
   whose words all match the previous one returns the previous scores
   outright, and otherwise only the *dirty* triple columns (64-triple
   word granularity, conservative by construction) are re-examined;
2. **per-pattern probability memo** -- every triple's score is a pure
   function of its ``(providers, silent)`` pattern (the same property the
   sharded engine's bit-identity contract rests on), so dirty columns
   whose patterns were scored before gather their probability from a
   :class:`~repro.core.plans.PatternValueMemo` without touching the model;
3. **novel-pattern sub-batches** -- only genuinely new patterns go through
   ``joint_params_batch`` + compiled-plan execution (as a sub-batch
   :class:`~repro.core.patterns.PatternSet`), and the results are
   scatter-merged back in legacy column order.

Because each reuse level returns exactly the bits a cold run would compute
(level 1 reuses a previous request's own output for bit-identical columns,
levels 2-3 rely on per-pattern independence), delta scores are
**bit-identical to cold scores** -- pinned by the hypothesis suite in
``tests/test_deltas.py`` and the zero-diff gate of
``benchmarks/bench_delta_serving.py``.

The scorer is deliberately conservative: mismatched source counts, legacy
engines, or a dirty fraction beyond ``churn_fraction`` fall back to the
cold path (which still reuses known patterns through the memo -- the case
micro-batched fused matrices hit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.bitset import pack_bool_vector
from repro.core.fusion import ModelBasedFuser
from repro.core.observations import ObservationMatrix
from repro.core.patterns import PatternSet, extract_patterns
from repro.core.plans import PatternValueMemo, pattern_row_keys
from repro.core.parallel import WORD_BITS

#: Above this dirty-column fraction the delta path stops paying off (the
#: per-column bookkeeping approaches full extraction cost) and the scorer
#: falls back to the cold path.
DEFAULT_CHURN_FRACTION = 0.5


def dirty_columns(
    previous: ObservationMatrix, current: ObservationMatrix
) -> Optional[np.ndarray]:
    """Triple columns of ``current`` that may differ from ``previous``.

    XORs the bit-packed ``provides`` and ``coverage`` words of both
    matrices, OR-reduces the per-source difference words into one
    dirty-bit vector (bit ``j`` of word ``w`` is set iff column
    ``64 w + j`` differs in *any* source row), and unpacks only the
    non-zero words back into column ids -- so the diff costs one pass
    over ``n_sources x n_words`` ``uint64`` words plus work proportional
    to the number of dirty columns.  Columns beyond the previous matrix's
    width are always dirty (an appended column has no previous score to
    reuse even when its packed bits happen to match padding), and a
    column reported clean is guaranteed bit-identical in both
    ``provides`` and ``coverage`` -- the property that makes score reuse
    exact.

    Returns ``None`` when the matrices are incomparable (different source
    counts).
    """
    if previous.n_sources != current.n_sources:
        return None
    prev_provides = previous.packed_provides.words
    new_provides = current.packed_provides.words
    prev_coverage = previous.packed_coverage.words
    new_coverage = current.packed_coverage.words
    shared_words = min(prev_provides.shape[1], new_provides.shape[1])
    diff_bits = np.bitwise_or.reduce(
        (prev_provides[:, :shared_words] ^ new_provides[:, :shared_words])
        | (prev_coverage[:, :shared_words] ^ new_coverage[:, :shared_words]),
        axis=0,
    )
    n_current = current.n_triples
    word_ids = np.flatnonzero(diff_bits)
    if word_ids.size:
        # Unpack only the dirty words' bits back into column ids.
        dirty_bytes = (
            np.ascontiguousarray(diff_bits[word_ids])
            .view(np.uint8)
            .reshape(word_ids.size, 8)
        )
        bit_matrix = np.unpackbits(
            dirty_bytes, axis=1, bitorder="little"
        ).astype(bool)
        offsets, bits = np.nonzero(bit_matrix)
        columns = word_ids[offsets] * WORD_BITS + bits
        columns = columns[columns < n_current]
    else:
        columns = np.zeros(0, dtype=np.int64)
    extra_words = new_provides.shape[1] - shared_words
    if extra_words > 0:
        # Words the previous matrix does not even have: every column in
        # them (below the current width) is dirty.
        start = shared_words * WORD_BITS
        columns = np.concatenate(
            [columns, np.arange(start, n_current, dtype=np.int64)]
        )
    if n_current > previous.n_triples:
        # Appended columns never have a previous score, word match or not.
        columns = np.concatenate(
            [columns, np.arange(previous.n_triples, n_current, dtype=np.int64)]
        )
    return np.unique(columns)


@dataclass(frozen=True)
class WordDiff:
    """Word-level diff between two labelled training snapshots.

    Produced by :func:`dirty_words` and consumed by
    :meth:`~repro.core.joint.EmpiricalJointModel.refit_delta`: the joint
    model's popcount statistics are updated by subtracting old-word and
    adding new-word popcounts for exactly the ``word_ids`` listed here.
    Both snapshots are compared over a common padded width of ``n_words``
    ``uint64`` words (``pack_bool_rows`` zero-pads tail bits, so padding
    never contributes spurious counts).
    """

    #: Dirty ``uint64`` word indices over the padded common width -- a word
    #: is dirty when *any* source's provides/coverage bits or any label bit
    #: inside it changed (conservative 64-column granularity).
    word_ids: np.ndarray
    #: Per-source flag: did any of this source's provides/coverage words
    #: change?  Drives selective memo invalidation (a cached subset whose
    #: sources are all clean keeps its exact counts).
    dirty_sources: np.ndarray
    #: Did any label bit change?  When true, *every* truth-conditioned count
    #: is suspect and per-subset caches are flushed wholesale (counters are
    #: still updated incrementally -- label words are part of the diff).
    labels_changed: bool
    #: The padded word width both snapshots were compared over.
    n_words: int

    @property
    def dirty_fraction(self) -> float:
        """Fraction of words dirty -- the churn measure for fallback."""
        return float(self.word_ids.size) / float(max(self.n_words, 1))


def dirty_words(
    previous: ObservationMatrix,
    current: ObservationMatrix,
    previous_labels: np.ndarray,
    current_labels: np.ndarray,
) -> Optional[WordDiff]:
    """Word-level diff of two labelled snapshots, or ``None`` if incomparable.

    Unlike :func:`dirty_columns` (column ids for score reuse), this returns
    ``uint64`` *word* ids -- the granularity at which
    :class:`~repro.core.joint.EmpiricalJointModel` stores its packed
    popcount statistics.  A word is dirty when any source's ``provides`` or
    ``coverage`` bits changed inside it, or when any label bit changed
    (labels are diffed through both their true *and* complement packings,
    which makes width-boundary words dirty automatically: growing the
    matrix turns previously-padding bits of the last shared word into real
    ``~labels`` bits).

    Returns ``None`` when the source sets differ (different count or
    names) -- the caller must fall back to an exact recount.
    """
    if previous.n_sources != current.n_sources:
        return None
    if previous.source_names != current.source_names:
        return None
    labels_identical = current_labels is previous_labels
    previous_labels = np.asarray(previous_labels, dtype=bool)
    current_labels = np.asarray(current_labels, dtype=bool)
    if previous_labels.shape != (previous.n_triples,):
        return None
    if current_labels.shape != (current.n_triples,):
        return None
    prev_provides = previous.packed_provides.words
    new_provides = current.packed_provides.words
    prev_coverage = previous.packed_coverage.words
    new_coverage = current.packed_coverage.words
    n_words = max(prev_provides.shape[1], new_provides.shape[1])

    def _pad(words: np.ndarray) -> np.ndarray:
        if words.shape[-1] == n_words:
            return words
        pad_width = [(0, 0)] * (words.ndim - 1) + [
            (0, n_words - words.shape[-1])
        ]
        return np.pad(words, pad_width)

    row_diff = (_pad(prev_provides) ^ _pad(new_provides)) | (
        _pad(prev_coverage) ^ _pad(new_coverage)
    )
    dirty_sources = row_diff.any(axis=1)
    if row_diff.shape[0]:
        word_bits = np.bitwise_or.reduce(row_diff, axis=0)
    else:
        word_bits = np.zeros(n_words, dtype=np.uint64)
    if labels_identical:
        # Same labels object on both sides: the shape checks above force
        # equal n_triples, so both packings (and the padding-boundary
        # complement trick) are provably identical -- skip the 4 packs.
        labels_changed = False
        word_ids = np.flatnonzero(word_bits)
    else:
        label_bits = (
            _pad(pack_bool_vector(previous_labels))
            ^ _pad(pack_bool_vector(current_labels))
        ) | (
            _pad(pack_bool_vector(~previous_labels))
            ^ _pad(pack_bool_vector(~current_labels))
        )
        labels_changed = bool(label_bits.any())
        word_ids = np.flatnonzero(word_bits | label_bits)
    return WordDiff(
        word_ids=word_ids,
        dirty_sources=dirty_sources,
        labels_changed=labels_changed,
        n_words=n_words,
    )


class _Snapshot:
    """One served request: the matrix plus its (private) score vector."""

    __slots__ = ("observations", "scores")

    def __init__(
        self, observations: ObservationMatrix, scores: np.ndarray
    ) -> None:
        self.observations = observations
        self.scores = scores


class DeltaScorer:
    """Incremental scoring wrapper around one :class:`ModelBasedFuser`.

    Owned by :class:`~repro.core.api.ScoringSession` (one scorer per fuser
    generation -- ``refit`` swaps fuser and scorer together, so stale
    per-pattern memos cannot survive a generation bump).  ``score`` picks
    the cheapest path that stays bit-identical to a cold run:

    - **identical** -- the packed words match the previous request
      exactly: return a copy of the previous scores (zero plan
      executions, zero model calls);
    - **delta** -- a small dirty-column set: reuse previous scores for
      clean columns, the per-pattern memo for dirty columns with known
      patterns, and batch only the novel patterns;
    - **cold** -- no usable previous request or churn beyond
      ``churn_fraction``: full pattern extraction, with known patterns
      still gathered from the memo (the micro-batching case).

    Pattern-level reuse (the delta and memo-filtered-cold paths) requires
    the fuser's per-pattern scores to be bitwise independent of batch
    composition (``ModelBasedFuser.pattern_batch_invariant``).  For fusers
    without that guarantee (PrecRec, aggressive -- BLAS matrix products),
    the scorer keeps only the identical-request fast path, which is exact
    for any fuser.

    Thread-safety: the snapshot is an immutable object swapped by single
    assignment, the memo is internally locked, and every computed value is
    a deterministic pure function of the fuser's fixed state -- racing
    requests can duplicate work but never mix generations or tear scores
    (the session binds one scorer per call, same discipline as the fuser
    swap).
    """

    def __init__(
        self,
        fuser: ModelBasedFuser,
        churn_fraction: float = DEFAULT_CHURN_FRACTION,
        max_memo_entries: int = 200_000,
    ) -> None:
        if not 0.0 <= churn_fraction <= 1.0:
            raise ValueError(
                f"churn_fraction must be in [0, 1], got {churn_fraction}"
            )
        self._fuser = fuser
        self._churn_fraction = float(churn_fraction)
        self._pattern_reuse = bool(
            getattr(fuser, "pattern_batch_invariant", False)
        )
        self._memo = PatternValueMemo(max_memo_entries)
        self._prev: Optional[_Snapshot] = None
        # Mode/volume counters; plain ints (diagnostics -- a lost increment
        # under a thread race is acceptable, mirroring MaskedJointCache).
        self._identical = 0
        self._delta = 0
        self._cold = 0
        self._dirty_columns = 0
        self._reused_columns = 0
        self._novel_patterns = 0
        self._reused_patterns = 0

    @property
    def fuser(self) -> ModelBasedFuser:
        """The fuser this scorer computes through (fixed for its lifetime)."""
        return self._fuser

    @property
    def memo(self) -> PatternValueMemo:
        """The per-pattern probability memo (diagnostics)."""
        return self._memo

    @property
    def stats(self) -> dict:
        """Serving diagnostics: path counts, reuse volumes, memo counters."""
        return {
            "identical": self._identical,
            "delta": self._delta,
            "cold": self._cold,
            "dirty_columns": self._dirty_columns,
            "reused_columns": self._reused_columns,
            "novel_patterns": self._novel_patterns,
            "reused_patterns": self._reused_patterns,
            "memo": self._memo.stats,
        }

    def invalidate(self) -> None:
        """Drop the previous-request snapshot and the pattern memo."""
        self._prev = None
        self._memo.invalidate()

    # -- scoring paths -------------------------------------------------

    def score(
        self, observations: ObservationMatrix, snapshot: bool = True
    ) -> np.ndarray:
        """One truthfulness score per triple, bit-identical to a cold run.

        ``snapshot=False`` scores without installing this request as the
        previous-request snapshot -- for out-of-band requests (the
        micro-batcher's fused concatenations) that would otherwise break
        the streaming sequence's delta continuity.  The pattern memo is
        still consulted and extended either way.
        """
        prev = self._prev
        if prev is not None:
            dirty = dirty_columns(prev.observations, observations)
            if dirty is not None:
                n_current = observations.n_triples
                if (
                    dirty.size == 0
                    and n_current == prev.observations.n_triples
                ):
                    self._identical += 1
                    return prev.scores.copy()
                if self._pattern_reuse and dirty.size <= (
                    self._churn_fraction * max(n_current, 1)
                ):
                    return self._score_delta(
                        prev, observations, dirty, snapshot
                    )
        self._cold += 1
        if not self._pattern_reuse:
            # No pattern-level reuse guarantee: score plainly, keeping the
            # snapshot so identical repeats still short-circuit.
            scores = self._fuser.score(observations)
            if snapshot:
                self._prev = _Snapshot(observations, scores.copy())
            return scores
        return self._score_full(observations, snapshot)

    def _pattern_values(
        self, keys: list[bytes], provider_rows: np.ndarray,
        silent_rows: np.ndarray,
    ) -> np.ndarray:
        """Probability per distinct pattern row: memo first, batch the rest.

        ``provider_rows`` / ``silent_rows`` are the distinct pattern
        matrices, ``keys`` their row keys.  Novel rows are evaluated as a
        sub-batch :class:`PatternSet` through the fuser's
        ``pattern_probabilities`` (bit-identical to the same rows inside a
        full batch -- per-pattern independence) and memoised.
        """
        values, novel = self._memo.lookup(keys)
        probabilities = np.empty(len(keys), dtype=float)
        for position, value in enumerate(values):
            if value is not None:
                probabilities[position] = value
        self._reused_patterns += len(keys) - novel.size
        if novel.size:
            generation = self._memo.generation
            novel_set = PatternSet(
                provider_matrix=provider_rows[novel],
                silent_matrix=silent_rows[novel],
                inverse=np.arange(novel.size, dtype=np.int64),
                counts=np.ones(novel.size, dtype=np.int64),
            )
            novel_probs = np.asarray(
                self._fuser.pattern_probabilities(novel_set), dtype=float
            )
            probabilities[novel] = novel_probs
            self._memo.store(
                [keys[i] for i in novel.tolist()],
                novel_probs.tolist(),
                generation=generation,
            )
            self._novel_patterns += int(novel.size)
        return probabilities

    def _score_full(
        self, observations: ObservationMatrix, snapshot: bool = True
    ) -> np.ndarray:
        """Cold path: full pattern extraction, memo-filtered evaluation."""
        fuser = self._fuser
        if observations.n_sources != fuser.model.n_sources:
            # Delegate shape validation (and its error message) to the fuser.
            return fuser.score(observations)
        patterns = observations.patterns()
        keys = pattern_row_keys(
            patterns.provider_matrix, patterns.silent_matrix
        )
        probabilities = self._pattern_values(
            keys, patterns.provider_matrix, patterns.silent_matrix
        )
        scores = patterns.scatter(probabilities).astype(float, copy=False)
        if snapshot:
            self._prev = _Snapshot(observations, scores.copy())
        return scores

    def _score_delta(
        self,
        prev: _Snapshot,
        observations: ObservationMatrix,
        dirty: np.ndarray,
        snapshot: bool = True,
    ) -> np.ndarray:
        """Delta path: previous scores for clean columns, memo for dirty."""
        self._delta += 1
        self._dirty_columns += int(dirty.size)
        # The dirty columns form a small observation submatrix; its
        # distinct patterns come from the same extraction (and therefore
        # the same packed-row dedup) the cold path uses, so the memo keys
        # line up by construction.
        dirty_patterns = extract_patterns(
            observations.provides[:, dirty],
            observations.coverage[:, dirty],
        )
        keys = pattern_row_keys(
            dirty_patterns.provider_matrix, dirty_patterns.silent_matrix
        )
        probabilities = self._pattern_values(
            keys,
            dirty_patterns.provider_matrix,
            dirty_patterns.silent_matrix,
        )
        inverse = dirty_patterns.inverse
        n_current = observations.n_triples
        scores = np.empty(n_current, dtype=float)
        clean = np.ones(n_current, dtype=bool)
        clean[dirty] = False
        clean_ids = np.flatnonzero(clean)
        # Every clean column id is < prev.n_triples by construction
        # (dirty_columns marks all appended columns dirty).
        scores[clean_ids] = prev.scores[clean_ids]
        scores[dirty] = probabilities[inverse]
        self._reused_columns += int(clean_ids.size)
        if snapshot:
            self._prev = _Snapshot(observations, scores.copy())
        return scores
