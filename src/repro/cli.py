"""Command-line interface: fuse, compare, and inspect correlations.

Usage (after ``pip install -e .``)::

    python -m repro datasets
    python -m repro fuse --dataset reverb --method precreccorr
    python -m repro compare --dataset restaurant
    python -m repro correlations --dataset book
    python -m repro fuse --dataset figure1 --method precrec --scores-csv out.csv

All commands are offline and deterministic (datasets are generated from
their canonical seeds unless ``--seed`` is given).
"""

from __future__ import annotations

import argparse
import csv
import math
import sys
from typing import Mapping, Optional, Sequence

from repro.core.api import METHOD_NAMES, fuse
from repro.core.clustering import discovered_correlation_groups, pairwise_correlations
from repro.core.api import fit_model
from repro.util.validation import ENGINES
from repro.data.registry import available_datasets, get_dataset
from repro.eval.harness import (
    paper_method_specs,
    run_comparison,
    run_serving,
    run_serving_chaos,
    run_serving_load,
)
from repro.eval.metrics import auc_pr, auc_roc, binary_metrics
from repro.eval.report import comparison_table, format_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Correlation-aware data fusion "
            "(reproduction of Pochampally et al., SIGMOD 2014)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the registered datasets")

    fuse_cmd = sub.add_parser("fuse", help="fuse one dataset with one method")
    _add_dataset_args(fuse_cmd)
    fuse_cmd.add_argument(
        "--method", default="precreccorr",
        help=f"fusion method; one of {', '.join(METHOD_NAMES)}",
    )
    fuse_cmd.add_argument(
        "--decision-prior", type=float, default=None,
        help="alpha of the posterior formula (default: 0.5, the paper "
             "protocol); pass -1 to use the calibrated prior; does not "
             "apply to --method em, whose evolving prior plays that role",
    )
    fuse_cmd.add_argument(
        "--smoothing", type=float, default=0.0,
        help="Laplace smoothing for quality estimation (does not apply to "
             "--method em, which has its own pseudo-count)",
    )
    fuse_cmd.add_argument(
        "--scores-csv", metavar="PATH",
        help="write per-triple scores (id, score, accepted, gold) to a CSV",
    )
    fuse_cmd.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="score the dataset N times through one ScoringSession and "
             "report cold vs warm timing -- the serving loop, where "
             "repeated calls hit the compiled-plan cache (default: 1)",
    )
    fuse_cmd.add_argument(
        "--mutate-frac", type=float, default=0.0, metavar="F",
        help="with --repeat: mutate this fraction of triple columns "
             "between consecutive scores, replaying a streaming mutation "
             "trace through the delta engine instead of re-scoring an "
             "identical matrix (default: 0.0); with --delta auto every "
             "delta score is verified bit-for-bit against an independent "
             "plain-scoring session (with --delta off there is no delta "
             "layer to check and the drift reads n/a)",
    )
    fuse_cmd.add_argument(
        "--delta", choices=("auto", "off"), default="auto",
        help="incremental delta scoring across --repeat requests: reuse "
             "previous scores for unchanged triple columns and evaluate "
             "only novel observation patterns (auto, default) or always "
             "score cold (off); scores are bit-identical either way",
    )
    fuse_cmd.add_argument(
        "--refit-every", type=int, default=0, metavar="N",
        help="with --repeat: refit the model from the mutated matrix every "
             "N serving steps (0 = never, default); every refit is "
             "verified bit-for-bit against an independent cold-refit "
             "session",
    )
    fuse_cmd.add_argument(
        "--refit-mode", choices=("delta", "cold"), default="delta",
        help="how --refit-every refits: 'delta' updates the joint-count "
             "statistics for dirty uint64 words only (and warm-starts EM "
             "from the previous posteriors), 'cold' refits from scratch; "
             "count-based methods are bit-identical either way "
             "(default: delta)",
    )
    fuse_cmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker threads for sharded parallel scoring (default: "
             "$REPRO_DEFAULT_WORKERS or 1 = serial); scores are "
             "bit-identical at any worker count",
    )
    fuse_cmd.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="patterns per shard for parallel scoring (default: one "
             "word-aligned shard per worker)",
    )
    fuse_cmd.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="with --repeat: durably checkpoint the serving loop into "
             "DIR (atomic snapshots + a write-ahead log); a crashed run "
             "is recoverable bit-identically via 'repro recover'",
    )
    fuse_cmd.add_argument(
        "--record-trace", metavar="PATH", default=None,
        help="with --repeat and --mutate-frac: record the mutation trace "
             "as checksummed WAL records at PATH for later --replay-trace "
             "runs (the file must not already exist)",
    )
    fuse_cmd.add_argument(
        "--replay-trace", metavar="PATH", default=None,
        help="with --repeat: replay a recorded mutation trace (or any "
             "checkpoint directory's wal.log) instead of drawing "
             "synthetic mutations; overrides --mutate-frac",
    )
    _add_engine_arg(fuse_cmd)

    compare_cmd = sub.add_parser(
        "compare", help="run the paper's seven methods on one dataset"
    )
    _add_dataset_args(compare_cmd)
    compare_cmd.add_argument(
        "--ltm-iterations", type=int, default=60,
        help="Gibbs sweeps for the LTM baseline",
    )
    _add_engine_arg(compare_cmd)

    corr_cmd = sub.add_parser(
        "correlations", help="report the discovered source correlations"
    )
    _add_dataset_args(corr_cmd)
    corr_cmd.add_argument(
        "--min-phi", type=float, default=0.15,
        help="minimum |phi| for a pair to count as correlated",
    )

    serve_cmd = sub.add_parser(
        "serve-bench",
        help="drive the async serving front end with an open-loop load "
             "generator and report p50/p99 latency, QPS, shedding, and "
             "bit-identity",
    )
    _add_dataset_args(serve_cmd)
    serve_cmd.add_argument(
        "--method", default="precreccorr",
        help=f"fusion method; one of {', '.join(METHOD_NAMES)}",
    )
    serve_cmd.add_argument(
        "--rate", type=float, default=200.0, metavar="QPS",
        help="open-loop arrival rate: requests are scheduled at fixed "
             "times k/rate regardless of completions (default: 200)",
    )
    serve_cmd.add_argument(
        "--requests", type=int, default=200, metavar="N",
        help="total requests to offer (default: 200)",
    )
    serve_cmd.add_argument(
        "--request-triples", type=int, default=96, metavar="W",
        help="triple columns per request window (default: 96)",
    )
    serve_cmd.add_argument(
        "--budget", type=float, default=0.05, metavar="SECONDS",
        help="per-request latency budget; batches flush once the oldest "
             "request's budget is half-spent (default: 0.05)",
    )
    serve_cmd.add_argument(
        "--cutoff", choices=("deadline", "fixed"), default="deadline",
        help="batch cut-off policy: deadline-aware (default) or the "
             "fixed coalescing window baseline",
    )
    serve_cmd.add_argument(
        "--fixed-window", type=float, default=0.04, metavar="SECONDS",
        help="coalescing window for --cutoff fixed (default: 0.04)",
    )
    serve_cmd.add_argument(
        "--max-queue-depth", type=int, default=256, metavar="N",
        help="admission control: shed once this many requests are "
             "admitted but unfinished (default: 256)",
    )
    serve_cmd.add_argument(
        "--max-inflight-bytes", type=int, default=None, metavar="B",
        help="admission control: shed once admitted requests' summed "
             "payload exceeds this (default: unbounded)",
    )
    serve_cmd.add_argument(
        "--refit-every", type=int, default=0, metavar="N",
        help="swap model generations under live traffic every N request "
             "arrivals (0 = never, default); served scores stay "
             "bit-identical to the serving generation's direct scores",
    )
    serve_cmd.add_argument(
        "--refit-mode", choices=("delta", "cold"), default="delta",
        help="refit strategy for --refit-every (default: delta)",
    )
    serve_cmd.add_argument(
        "--mutate-frac", type=float, default=0.02, metavar="F",
        help="fraction of columns mutated between consecutive trace "
             "steps (default: 0.02)",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker threads for sharded scoring inside the session",
    )
    serve_cmd.add_argument(
        "--parallel-backend", choices=("thread", "process"), default=None,
        help="executor backend for sharded scoring (default: thread); "
             "worker-site fault schedules need 'process' for kill "
             "actions to reach a real worker process",
    )
    serve_cmd.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="patterns per shard for parallel scoring; worker-site "
             "fault schedules need requests wide enough to span "
             "multiple word-aligned shards (e.g. --shard-size 64 "
             "--request-triples 256) or the pool never dispatches",
    )
    serve_cmd.add_argument(
        "--chaos", action="store_true",
        help="replay the trace under deterministic fault injection and "
             "assert the fault-tolerance contract: every request "
             "terminates, the admission ledger drains to zero, and "
             "completed scores stay bit-identical to a fault-free cold "
             "twin",
    )
    serve_cmd.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault schedule for --chaos, e.g. "
             "'worker:kill:2,score:raise:1:0' (site:action[:nth[:count]]"
             "[@delay]); default: reuse $REPRO_FAULTS if armed, else a "
             "random plan drawn from --chaos-seed",
    )
    serve_cmd.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="seed for the random fault plan when --faults is not given "
             "(default: 0)",
    )
    serve_cmd.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="durably checkpoint serving state into DIR: every "
             "mid-traffic generation swap lands in a write-ahead log and "
             "snapshots follow the refit cadence; with --chaos, "
             "persist-site faults exercise the checkpointer's "
             "absorb-and-degrade policy",
    )

    recover_cmd = sub.add_parser(
        "recover",
        help="inspect and validate a checkpoint directory: load the "
             "newest valid snapshot, replay the WAL suffix, and report "
             "what a crashed serving process would recover to",
    )
    recover_cmd.add_argument(
        "--checkpoint-dir", metavar="DIR", required=True,
        help="checkpoint directory written by --checkpoint-dir runs",
    )
    return parser


def _add_engine_arg(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--engine", choices=ENGINES, default="vectorized",
        help="execution engine: pattern-centric bit-packed scoring "
             "(vectorized, default) or the per-triple reference path (legacy)",
    )


def _add_dataset_args(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--dataset", required=True,
        help=f"one of: {', '.join(available_datasets())}",
    )
    command.add_argument(
        "--seed", type=int, default=None,
        help="generator seed (default: the benchmark suite's canonical seed)",
    )


def _cmd_datasets() -> int:
    rows = []
    for name in available_datasets():
        dataset = get_dataset(name) if name == "figure1" else None
        description = dataset.description if dataset else ""
        rows.append([name, description])
    print(format_table(["dataset", "notes"], rows))
    print("\n(generate any of them with: python -m repro fuse --dataset <name> ...)")
    return 0


def _cmd_fuse(args: argparse.Namespace) -> int:
    if args.repeat < 1:
        raise ValueError(f"--repeat must be >= 1, got {args.repeat}")
    if not 0.0 <= args.mutate_frac <= 1.0:
        raise ValueError(
            f"--mutate-frac must be in [0, 1], got {args.mutate_frac}"
        )
    if args.mutate_frac > 0.0 and args.repeat < 2:
        raise ValueError(
            "--mutate-frac needs --repeat >= 2: mutations apply between "
            "consecutive scores of the serving loop"
        )
    if args.refit_every < 0:
        raise ValueError(
            f"--refit-every must be >= 0, got {args.refit_every}"
        )
    if args.refit_every > 0 and args.repeat < 2:
        raise ValueError(
            "--refit-every needs --repeat >= 2: refits happen between "
            "consecutive scores of the serving loop"
        )
    dataset = get_dataset(args.dataset, seed=args.seed)
    # Unset defaults to the paper protocol's 0.5 for model-based methods;
    # EM has no separate decision alpha, so the default stays unset there
    # and any *explicit* value (including -1) is passed through for fuse
    # to reject with a clear error.
    decision_prior = args.decision_prior
    if args.method.lower() != "em":
        if decision_prior is None:
            decision_prior = 0.5
        elif decision_prior < 0:
            decision_prior = None
    if (
        args.checkpoint_dir or args.record_trace or args.replay_trace
    ) and args.repeat < 2:
        raise ValueError(
            "--checkpoint-dir/--record-trace/--replay-trace need "
            "--repeat >= 2: they act on the serving loop"
        )
    serving = None
    if args.repeat > 1:
        serving = run_serving(
            dataset,
            method=args.method,
            repeats=args.repeat - 1,
            smoothing=args.smoothing,
            decision_prior=decision_prior,
            engine=args.engine,
            workers=args.workers,
            shard_size=args.shard_size,
            delta=args.delta,
            mutate_frac=args.mutate_frac,
            refit_every=args.refit_every,
            refit_mode=args.refit_mode,
            checkpoint_dir=args.checkpoint_dir,
            record_trace=args.record_trace,
            replay_trace=args.replay_trace,
        )
        result = serving.result
    else:
        result = fuse(
            dataset.observations,
            dataset.labels,
            method=args.method,
            smoothing=args.smoothing,
            decision_prior=decision_prior,
            engine=args.engine,
            workers=args.workers,
            shard_size=args.shard_size,
        )
    metrics = binary_metrics(result.accepted, dataset.labels)
    print(dataset.summary())
    print(
        format_table(
            ["method", "precision", "recall", "F1", "AUC-PR", "AUC-ROC", "time(s)"],
            [[
                result.method, metrics.precision, metrics.recall, metrics.f1,
                auc_pr(result.scores, dataset.labels),
                auc_roc(result.scores, dataset.labels),
                result.elapsed_seconds,
            ]],
        )
    )
    if serving is not None:
        if args.replay_trace:
            trace = f"recorded-trace steps ({args.replay_trace})"
        elif serving.mutate_frac > 0.0:
            trace = (
                f"mutation-trace steps ({serving.mutate_frac:.1%} "
                "columns/step)"
            )
        else:
            trace = "identical repeats"
        drift = (
            "n/a (no delta layer to check)"
            if math.isnan(serving.max_warm_drift)
            else f"{serving.max_warm_drift:.1e}"
        )
        print(
            f"serving: fit {serving.fit_seconds:.4f}s, "
            f"cold score {serving.cold_seconds:.4f}s, "
            f"warm mean {serving.warm_mean_seconds:.4f}s over "
            f"{serving.repeats} {trace} "
            f"({serving.cold_over_warm:.1f}x cold/warm, "
            f"max warm drift {drift})"
        )
        per_score = (
            serving.cold_seconds + sum(serving.warm_seconds)
        ) / (1 + serving.repeats)
        print(
            f"serving: {per_score:.4f}s wall-clock per score over "
            f"{1 + serving.repeats} calls, effective workers "
            f"{serving.workers}, delta {serving.delta}"
        )
        plan = serving.plan_cache_stats
        if plan:
            print(
                "serving: plan cache "
                f"hits={plan.get('hits', 0)} misses={plan.get('misses', 0)} "
                f"computes={plan.get('computes', 0)} "
                f"evictions={plan.get('evictions', 0)} "
                f"entries={plan.get('entries', 0)}"
            )
        joint = serving.joint_cache_stats
        if joint:
            print(
                "serving: joint cache "
                f"hits={joint.get('hits', 0)} misses={joint.get('misses', 0)} "
                f"evictions={joint.get('evictions', 0)} "
                f"entries={joint.get('entries', 0)}"
            )
        delta_stats = serving.delta_stats
        if delta_stats:
            print(
                "serving: delta paths "
                f"identical={delta_stats.get('identical', 0)} "
                f"delta={delta_stats.get('delta', 0)} "
                f"cold={delta_stats.get('cold', 0)}; reused "
                f"{delta_stats.get('reused_columns', 0)} columns / "
                f"{delta_stats.get('reused_patterns', 0)} patterns, "
                f"{delta_stats.get('novel_patterns', 0)} novel patterns"
            )
        if serving.refit_count:
            refit = serving.refit_stats
            refit_drift = (
                "n/a"
                if math.isnan(serving.refit_max_score_diff)
                else f"{serving.refit_max_score_diff:.1e}"
            )
            print(
                f"serving: refits every {serving.refit_every} steps "
                f"({serving.refit_mode} mode): "
                f"{refit.get('delta_refits', 0)} delta + "
                f"{refit.get('cold_refits', 0)} cold, mean "
                f"{serving.refit_mean_seconds:.4f}s, max score diff vs "
                f"cold refit {refit_drift}"
            )
            fractions = refit.get("dirty_word_fractions") or ()
            if fractions:
                print(
                    "serving: refit dirty-word fraction mean "
                    f"{sum(fractions) / len(fractions):.1%} over "
                    f"{len(fractions)} diffed refits"
                )
            warm = refit.get("em_warm_start") or {}
            if warm.get("warm_scores", 0):
                print(
                    "serving: EM warm starts "
                    f"{warm.get('warm_scores', 0)}, iterations saved "
                    f"{warm.get('iterations_saved', 0)}"
                )
        checkpoint = serving.checkpoint_stats
        if checkpoint:
            print(_checkpoint_line(checkpoint))
        if args.record_trace:
            print(f"serving: mutation trace recorded to {args.record_trace}")
    if args.scores_csv:
        with open(args.scores_csv, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["triple", "score", "accepted", "gold"])
            for j in range(dataset.n_triples):
                writer.writerow(
                    [j, f"{result.scores[j]:.6f}",
                     int(result.accepted[j]), int(dataset.labels[j])]
                )
        print(f"per-triple scores written to {args.scores_csv}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    dataset = get_dataset(args.dataset, seed=args.seed)
    specs = paper_method_specs(
        ltm_iterations=args.ltm_iterations, engine=args.engine
    )
    comparison = run_comparison(dataset, specs)
    print(comparison_table(comparison))
    return 0


def _cmd_correlations(args: argparse.Namespace) -> int:
    dataset = get_dataset(args.dataset, seed=args.seed)
    model = fit_model(dataset.observations, dataset.labels)
    groups = discovered_correlation_groups(model, min_phi=args.min_phi)
    names = dataset.observations.source_names
    for side in ("true", "false"):
        print(f"{side}-side correlation groups:")
        if not groups[side]:
            print("  (none)")
        for group in groups[side]:
            members = ", ".join(names[i] for i in group)
            print(f"  [{len(group)}] {members}")
    if dataset.n_sources <= 12:
        rows = []
        for side in ("true", "false"):
            for e in pairwise_correlations(model, side, min_phi=args.min_phi):
                rows.append(
                    [side, names[e.source_i], names[e.source_j],
                     "positive" if e.positive else "negative", e.phi]
                )
        if rows:
            print()
            print(format_table(["side", "A", "B", "direction", "phi"], rows))
    return 0


def _checkpoint_line(stats: "Mapping") -> str:
    """One-line human summary of a run's checkpoint counters."""
    state = "DEGRADED" if stats.get("degraded") else "healthy"
    return (
        f"checkpoint: {state}, {stats.get('records', 0)} WAL records "
        f"({stats.get('mutations', 0)} mutations, "
        f"{stats.get('refits', 0)} refits), "
        f"{stats.get('snapshots', 0)} snapshots, "
        f"{stats.get('torn_repairs', 0)} torn-tail repairs, "
        f"{stats.get('skipped_degraded', 0)} skipped, "
        f"{stats.get('wal_bytes', 0)} WAL bytes in "
        f"{stats.get('directory', '?')}"
    )


def _serve_engine_options(args: argparse.Namespace) -> dict:
    """Optional session-engine knobs forwarded only when set."""
    return {
        key: value
        for key, value in (
            ("parallel_backend", args.parallel_backend),
            ("shard_size", args.shard_size),
        )
        if value is not None
    }


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    dataset = get_dataset(args.dataset, seed=args.seed)
    if args.chaos:
        return _serve_chaos(args, dataset)
    report = run_serving_load(
        dataset,
        method=args.method,
        rate_qps=args.rate,
        requests=args.requests,
        request_triples=args.request_triples,
        latency_budget=args.budget,
        batch_cutoff=args.cutoff,
        fixed_window_seconds=args.fixed_window,
        max_queue_depth=args.max_queue_depth,
        max_inflight_bytes=args.max_inflight_bytes,
        mutate_frac=args.mutate_frac,
        refit_every=args.refit_every,
        refit_mode=args.refit_mode,
        workers=args.workers,
        checkpoint_dir=args.checkpoint_dir,
        **_serve_engine_options(args),
    )
    print(dataset.summary())
    rows = [
        ["cutoff", report.batch_cutoff],
        ["offered rate (qps)", f"{report.rate_qps:.1f}"],
        ["requests", str(report.requests)],
        ["completed", str(report.completed)],
        ["shed", str(report.shed)],
        ["achieved qps", f"{report.achieved_qps:.1f}"],
        ["p50 latency (ms)", f"{report.p50_latency_seconds * 1e3:.2f}"],
        ["p99 latency (ms)", f"{report.p99_latency_seconds * 1e3:.2f}"],
        ["max latency (ms)", f"{report.max_latency_seconds * 1e3:.2f}"],
        ["refits", str(report.refits)],
        ["max |served - direct|", f"{report.max_abs_diff:.1e}"],
    ]
    print(format_table(["serving", "value"], rows))
    routing = report.routing_stats
    admission = report.admission_stats
    print(
        f"\nlanes: delta={routing.get('delta_routed', 0)} "
        f"cold={routing.get('cold_routed', 0)} "
        f"(churn evictions: {routing.get('churn_evictions', 0)}); "
        f"admission peak depth {admission.get('peak_depth', 0)}/"
        f"{admission.get('max_queue_depth', 0)}"
    )
    if report.checkpoint_stats:
        print(_checkpoint_line(report.checkpoint_stats))
    if report.max_abs_diff != 0.0:
        print(
            "error: served scores diverged from direct session.score",
            file=sys.stderr,
        )
        return 1
    return 0


def _serve_chaos(args: argparse.Namespace, dataset) -> int:
    """``serve-bench --chaos``: a seeded fault replay with hard asserts."""
    try:
        report = run_serving_chaos(
            dataset,
            method=args.method,
            rate_qps=args.rate,
            requests=args.requests,
            request_triples=args.request_triples,
            latency_budget=args.budget,
            batch_cutoff=args.cutoff,
            fixed_window_seconds=args.fixed_window,
            max_queue_depth=args.max_queue_depth,
            max_inflight_bytes=args.max_inflight_bytes,
            mutate_frac=args.mutate_frac,
            refit_every=args.refit_every,
            refit_mode=args.refit_mode,
            workers=args.workers,
            fault_spec=args.faults,
            fault_seed=args.chaos_seed,
            checkpoint_dir=args.checkpoint_dir,
            **_serve_engine_options(args),
        )
    except RuntimeError as error:
        # A violated chaos invariant (hang, accounting gap, admission
        # leak, bit-identity break) -- the whole point of the command.
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(dataset.summary())
    fired = report.fault_stats.get("fired", {})
    rows = [
        ["fault plan", report.fault_spec],
        ["faults fired", ", ".join(
            f"{site}x{n}" for site, n in sorted(fired.items())
        ) or "none"],
        ["requests", str(report.requests)],
        ["completed", str(report.completed)],
        ["shed", str(report.shed)],
        ["failed", str(report.failed)],
        ["retries", str(report.retries)],
        ["degraded batches", str(report.degraded_batches)],
        ["forced degrades", str(report.forced_degrades)],
        ["refit attempts", str(report.refit_attempts)],
        ["refit failures", str(report.refit_failures)],
        ["pool restarts", str(report.pool_stats.get("restarts", 0))],
        ["admission depth after", str(report.admission_depth_after)],
        ["max |served - twin|", f"{report.max_abs_diff:.1e}"],
    ]
    print(format_table(["chaos", "value"], rows))
    if report.checkpoint_stats:
        print(_checkpoint_line(report.checkpoint_stats))
    print(
        "\nall admitted requests terminated, the admission ledger drained "
        "to zero, and completed scores are bit-identical to the "
        "fault-free cold twin"
    )
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """``repro recover``: dry-run recovery and print what it found."""
    import json

    from repro.persist import RecoveryError, RecoveryManager

    manager = RecoveryManager(args.checkpoint_dir)
    try:
        recovered = manager.recover()
    except RecoveryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        report = recovered.report()
        report["method"] = recovered.config.get("method")
        report["n_sources"] = recovered.observations.n_sources
        report["n_triples"] = recovered.observations.n_triples
        print(json.dumps(report, indent=2))
        if recovered.snapshots_skipped:
            print(
                f"warning: {len(recovered.snapshots_skipped)} corrupt "
                "snapshot(s) skipped; recovery fell back to an older one",
                file=sys.stderr,
            )
        if recovered.wal_torn_bytes:
            print(
                f"note: {recovered.wal_torn_bytes} torn bytes at the WAL "
                "tail will be truncated on the next serving run",
                file=sys.stderr,
            )
    finally:
        recovered.session.close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "datasets":
            return _cmd_datasets()
        if args.command == "fuse":
            return _cmd_fuse(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "correlations":
            return _cmd_correlations(args)
        if args.command == "serve-bench":
            return _cmd_serve_bench(args)
        if args.command == "recover":
            return _cmd_recover(args)
    except ValueError as error:
        # Unsupported option combinations (e.g. --method em with
        # --smoothing or --decision-prior) raise ValueError with an
        # actionable message; surface it cleanly instead of a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
