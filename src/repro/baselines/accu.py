"""AccuCopy: accuracy-weighted voting with copy detection (Dong et al. 2009).

The paper contrasts its correlation model with the copy-detection line of
work [5, 6] and reports that on the BOOK dataset that approach "achieves
high precision of 0.97 as it successfully detects copying and reduces the
vote counts of false values.  However, it has a low recall of 0.82, since it
also discounts vote counts on true values and ignores other types of
correlations."  This module reimplements that comparator so the BOOK
benchmark can reproduce the contrast.

Unlike everything else in this repository, AccuCopy uses *conflicting-triple,
closed-world* semantics: triples are grouped into data items (one per
``(subject, predicate)``) and the candidate values of an item compete -- at
most one wins.  The model iterates:

1. **Copy detection** -- for every source pair, a Bayesian test on the items
   where both provide values.  Sharing a *false* value is far stronger
   evidence of copying than sharing a true value (a la Dong et al.), because
   independent sources rarely make the same mistake among many possible
   wrong values.
2. **Discounted voting** -- a source's vote for a value is weighted by
   ``ln(n * A_s / (1 - A_s))`` (its accuracy score) times an independence
   factor ``prod (1 - c * Pr(copier))`` over already-counted providers of
   the same value, so copiers add little beyond the original.
3. **Accuracy update** -- ``A_s`` becomes the mean probability of the values
   the source provides.

Scores returned are per-triple value probabilities, comparable with the
open-world fusers' outputs (an "unknown value" alternative with unit weight
keeps single-candidate items from trivially scoring 1).
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np

from repro.core.fusion import TruthFuser
from repro.core.observations import ObservationMatrix
from repro.util.validation import check_fraction, check_positive_int


class AccuCopyFuser(TruthFuser):
    """Accuracy + copy-detection fuser (single-truth, closed-world).

    Parameters
    ----------
    iterations:
        Outer rounds of (copy detection, voting, accuracy update).
    copy_rate:
        ``c``, the probability a copier copies a particular item.
    dependence_prior:
        Prior probability that an (ordered) source pair is dependent.
    n_false_values:
        Assumed size of the pool of plausible wrong values per item; drives
        how surprising a shared false value is under independence.
    min_shared_items:
        Pairs sharing fewer items than this are assumed independent (saves
        quadratic work on large, sparse datasets).
    detect_copying:
        Disable to obtain the plain ACCU model (used by the ablation bench).
    """

    name = "AccuCopy"

    def __init__(
        self,
        iterations: int = 5,
        copy_rate: float = 0.8,
        dependence_prior: float = 0.2,
        n_false_values: int = 10,
        min_shared_items: int = 3,
        detect_copying: bool = True,
    ) -> None:
        check_positive_int(iterations, "iterations")
        check_fraction(copy_rate, "copy_rate")
        check_fraction(dependence_prior, "dependence_prior")
        check_positive_int(n_false_values, "n_false_values")
        self.iterations = iterations
        self.copy_rate = copy_rate
        self.dependence_prior = dependence_prior
        self.n_false_values = n_false_values
        self.min_shared_items = max(1, int(min_shared_items))
        self.detect_copying = detect_copying
        self.name = "AccuCopy" if detect_copying else "Accu"
        #: Pairwise copy probabilities from the last run (diagnostics).
        self.copy_probability: np.ndarray | None = None

    # ------------------------------------------------------------------

    def score(self, observations: ObservationMatrix) -> np.ndarray:
        items = self._group_items(observations)
        n_sources = observations.n_sources
        provides = observations.provides

        # value_of[s, k] = triple column source s provides for item k, or -1.
        n_items = len(items)
        value_of = np.full((n_sources, n_items), -1, dtype=np.int64)
        for k, columns in enumerate(items):
            for col in columns:
                for s in np.flatnonzero(provides[:, col]):
                    value_of[s, k] = col  # a source provides one value/item

        accuracy = np.full(n_sources, 0.8)
        probabilities = np.full(observations.n_triples, 0.5)
        dependence = np.zeros((n_sources, n_sources))
        for _ in range(self.iterations):
            if self.detect_copying:
                dependence = self._detect_copying(value_of, probabilities, accuracy)
            probabilities = self._vote(items, provides, accuracy, dependence)
            accuracy = self._update_accuracy(provides, probabilities, accuracy)
        self.copy_probability = dependence
        return probabilities

    # ------------------------------------------------------------------

    @staticmethod
    def _group_items(observations: ObservationMatrix) -> list[list[int]]:
        """Columns grouped by data item (``(subject, predicate)``)."""
        index = observations.triple_index
        if index is None:
            # No semantics available: each triple is its own single-value item.
            return [[j] for j in range(observations.n_triples)]
        groups: dict[tuple[str, str], list[int]] = defaultdict(list)
        for j, triple in enumerate(index):
            groups[triple.data_item].append(j)
        return list(groups.values())

    def _detect_copying(
        self,
        value_of: np.ndarray,
        probabilities: np.ndarray,
        accuracy: np.ndarray,
    ) -> np.ndarray:
        """Pairwise Bayesian dependence posterior (symmetric)."""
        n_sources = value_of.shape[0]
        dependence = np.zeros((n_sources, n_sources))
        voted = value_of >= 0
        safe_values = np.where(voted, value_of, 0)
        value_true = probabilities[safe_values] >= 0.5  # per (source, item)
        c = self.copy_rate
        prior = self.dependence_prior
        log_prior_odds = math.log(prior) - math.log1p(-prior)
        for s1 in range(n_sources):
            both = voted[s1] & voted
            both[s1] = False
            shared_counts = both.sum(axis=1)
            for s2 in range(s1 + 1, n_sources):
                shared = int(shared_counts[s2])
                if shared < self.min_shared_items:
                    continue
                mask = both[s2]
                same = mask & (value_of[s1] == value_of[s2])
                kt = int((same & value_true[s1]).sum())
                kf = int((same & ~value_true[s1]).sum())
                kd = shared - kt - kf
                a1, a2 = accuracy[s1], accuracy[s2]
                p_true_ind = max(a1 * a2, 1e-9)
                p_false_ind = max((1 - a1) * (1 - a2) / self.n_false_values, 1e-9)
                p_diff_ind = max(1.0 - p_true_ind - p_false_ind, 1e-9)
                a_mean = (a1 + a2) / 2.0
                p_true_dep = c * a_mean + (1 - c) * p_true_ind
                p_false_dep = c * (1 - a_mean) + (1 - c) * p_false_ind
                p_diff_dep = max((1 - c) * p_diff_ind, 1e-12)
                log_odds = log_prior_odds + (
                    kt * (math.log(p_true_dep) - math.log(p_true_ind))
                    + kf * (math.log(p_false_dep) - math.log(p_false_ind))
                    + kd * (math.log(p_diff_dep) - math.log(p_diff_ind))
                )
                posterior = 1.0 / (1.0 + math.exp(-min(max(log_odds, -500), 500)))
                dependence[s1, s2] = dependence[s2, s1] = posterior
        return dependence

    def _vote(
        self,
        items: list[list[int]],
        provides: np.ndarray,
        accuracy: np.ndarray,
        dependence: np.ndarray,
    ) -> np.ndarray:
        """Discounted accuracy-weighted voting per item, softmax per item."""
        n = self.n_false_values
        vote_weight = np.log(
            np.clip(n * accuracy / np.clip(1.0 - accuracy, 1e-6, None), 1e-6, None)
        )
        probabilities = np.zeros(provides.shape[1])
        c = self.copy_rate
        for columns in items:
            confidences = []
            for col in columns:
                providers = np.flatnonzero(provides[:, col])
                # Count the most accurate provider first; later (likely
                # copying) providers are discounted by their dependence on
                # already-counted ones.
                providers = providers[np.argsort(-accuracy[providers])]
                counted: list[int] = []
                confidence = 0.0
                for s in providers:
                    independence = 1.0
                    for s_prev in counted:
                        independence *= 1.0 - c * dependence[s, s_prev]
                    confidence += vote_weight[s] * independence
                    counted.append(s)
                confidences.append(confidence)
            # Softmax across candidate values plus an "unknown value"
            # alternative of confidence 0 (weight 1).
            weights = np.exp(np.clip(np.asarray(confidences), -500, 500))
            total = weights.sum() + 1.0
            for col, w in zip(columns, weights):
                probabilities[col] = w / total
        return probabilities

    @staticmethod
    def _update_accuracy(
        provides: np.ndarray, probabilities: np.ndarray, accuracy: np.ndarray
    ) -> np.ndarray:
        provided_counts = provides.sum(axis=1)
        sums = provides @ probabilities
        updated = np.divide(
            sums,
            provided_counts,
            out=accuracy.copy(),
            where=provided_counts > 0,
        )
        return np.clip(updated, 0.01, 0.99)
