"""Baseline fusion methods the paper compares against (Section 5).

- :mod:`repro.baselines.voting` -- UNION-K and majority voting;
- :mod:`repro.baselines.estimates` -- Cosine / 2-Estimates / 3-Estimates
  (Galland et al., WSDM 2010);
- :mod:`repro.baselines.ltm` -- the Latent Truth Model (Zhao et al.,
  PVLDB 2012), collapsed Gibbs sampling;
- :mod:`repro.baselines.accu` -- AccuCopy, accuracy-weighted voting with
  copy detection (Dong et al., PVLDB 2009; closed-world single truth).
"""

from repro.baselines.accu import AccuCopyFuser
from repro.baselines.estimates import (
    CosineFuser,
    ThreeEstimatesFuser,
    TwoEstimatesFuser,
)
from repro.baselines.ltm import LatentTruthModel, LTMPriors
from repro.baselines.voting import MajorityVoteFuser, UnionKFuser

__all__ = [
    "AccuCopyFuser",
    "CosineFuser",
    "LTMPriors",
    "LatentTruthModel",
    "MajorityVoteFuser",
    "ThreeEstimatesFuser",
    "TwoEstimatesFuser",
    "UnionKFuser",
]
