"""LTM: the Latent Truth Model of Zhao et al. (PVLDB 2012), via collapsed Gibbs.

The paper's closest competitor (compared in Sections 3 and 5).  LTM is a
generative graphical model under the same independent-triple, open-world
semantics:

- each fact ``f`` has a latent truth ``t_f ~ Bernoulli(beta)``;
- each source ``s`` has a *false positive rate* ``phi0_s ~ Beta(a0)`` and a
  *sensitivity* (recall) ``phi1_s ~ Beta(a1)``;
- source ``s`` asserts fact ``f`` with probability ``phi1_s`` when ``t_f = 1``
  and ``phi0_s`` when ``t_f = 0`` (silence is the complementary event, only
  meaningful where the source covers the fact's domain).

Inference integrates the ``phi`` parameters out analytically (Beta-Bernoulli
conjugacy) and Gibbs-samples the truth bits: for each fact, the conditional
odds of ``t_f = 1`` multiply, over covering sources, the posterior-predictive
probability of the observed assert/silence under each truth value, using
counts over all *other* facts.  The truth score is the average of the
sampled bits after burn-in.

Hyperparameter defaults follow the LTM paper's guidance: a weak symmetric
prior on sensitivity (sources may recall much or little) and a prior that
false positive rates are low (most of what a source says is not fabricated),
with a uniform truth prior.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fusion import TruthFuser
from repro.core.observations import ObservationMatrix
from repro.util.rng import RngLike, ensure_rng
from repro.util.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class LTMPriors:
    """Beta hyperparameters of the Latent Truth Model.

    ``sensitivity = (a1_assert, a1_silent)`` is the prior on ``phi1_s``
    (recall); ``false_positive = (a0_assert, a0_silent)`` the prior on
    ``phi0_s``.  The defaults encode E[recall] = 0.5 (weak) and
    E[fpr] = 0.1 (sources rarely fabricate).
    """

    sensitivity: tuple[float, float] = (50.0, 50.0)
    false_positive: tuple[float, float] = (10.0, 90.0)
    truth: float = 0.5

    def __post_init__(self) -> None:
        for name in ("sensitivity", "false_positive"):
            pair = getattr(self, name)
            if len(pair) != 2 or min(pair) <= 0:
                raise ValueError(f"{name} prior must be two positive numbers")
        check_fraction(self.truth, "truth")


class LatentTruthModel(TruthFuser):
    """Collapsed Gibbs sampler for LTM.

    Parameters
    ----------
    iterations:
        Total Gibbs sweeps over all facts.
    burn_in:
        Sweeps discarded before averaging truth samples.
    priors:
        Beta hyperparameters (see :class:`LTMPriors`).
    seed:
        Seed or generator for reproducible chains.
    """

    name = "LTM"

    def __init__(
        self,
        iterations: int = 100,
        burn_in: int = 20,
        priors: LTMPriors | None = None,
        seed: RngLike = 7,
    ) -> None:
        check_positive_int(iterations, "iterations")
        if not 0 <= burn_in < iterations:
            raise ValueError(
                f"burn_in must be in [0, iterations), got {burn_in} of {iterations}"
            )
        self.iterations = iterations
        self.burn_in = burn_in
        self.priors = priors or LTMPriors()
        self._seed = seed
        #: Posterior-mean source quality from the last run (diagnostics).
        self.posterior_sensitivity: np.ndarray | None = None
        self.posterior_fpr: np.ndarray | None = None

    def score(self, observations: ObservationMatrix) -> np.ndarray:
        rng = ensure_rng(self._seed)
        provides = observations.provides
        coverage = observations.coverage
        n_sources, n_facts = provides.shape
        a1_yes, a1_no = self.priors.sensitivity
        a0_yes, a0_no = self.priors.false_positive
        log_prior_odds = np.log(self.priors.truth) - np.log1p(-self.priors.truth)

        # Initialise truth bits from majority vote among covering sources.
        electorate = np.maximum(coverage.sum(axis=0), 1)
        truth = provides.sum(axis=0) >= 0.5 * electorate

        # Per-source sufficient statistics over facts currently labelled
        # true/false: how many the source covers, and how many it asserts.
        pc = provides & coverage  # defensive; provides implies coverage
        cover_true = (coverage[:, truth]).sum(axis=1).astype(float)
        assert_true = (pc[:, truth]).sum(axis=1).astype(float)
        cover_all = coverage.sum(axis=1).astype(float)
        assert_all = pc.sum(axis=1).astype(float)
        cover_false = cover_all - cover_true
        assert_false = assert_all - assert_true

        samples = np.zeros(n_facts, dtype=float)
        n_samples = 0
        order = np.arange(n_facts)
        for sweep in range(self.iterations):
            rng.shuffle(order)
            for f in order:
                cov = coverage[:, f]
                obs = provides[cov, f]
                # Remove fact f's contribution from the stats.
                if truth[f]:
                    cover_true[cov] -= 1.0
                    assert_true[cov] -= obs
                else:
                    cover_false[cov] -= 1.0
                    assert_false[cov] -= obs
                # Posterior-predictive log odds of the observed row.
                ct, at = cover_true[cov], assert_true[cov]
                cf, af = cover_false[cov], assert_false[cov]
                p_assert_true = (at + a1_yes) / (ct + a1_yes + a1_no)
                p_assert_false = (af + a0_yes) / (cf + a0_yes + a0_no)
                log_odds = log_prior_odds + float(
                    np.sum(
                        np.where(
                            obs,
                            np.log(p_assert_true) - np.log(p_assert_false),
                            np.log1p(-p_assert_true) - np.log1p(-p_assert_false),
                        )
                    )
                )
                p_true = 1.0 / (1.0 + np.exp(-np.clip(log_odds, -500, 500)))
                truth[f] = rng.random() < p_true
                # Restore stats under the (possibly new) assignment.
                if truth[f]:
                    cover_true[cov] += 1.0
                    assert_true[cov] += obs
                else:
                    cover_false[cov] += 1.0
                    assert_false[cov] += obs
            if sweep >= self.burn_in:
                samples += truth
                n_samples += 1

        self.posterior_sensitivity = (assert_true + a1_yes) / (
            cover_true + a1_yes + a1_no
        )
        self.posterior_fpr = (assert_false + a0_yes) / (cover_false + a0_yes + a0_no)
        return samples / max(n_samples, 1)
