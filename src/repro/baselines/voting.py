"""Voting baselines: UNION-K and majority vote (paper Section 5).

UNION-K "considers a triple to be true if at least K% of the sources provide
it"; UNION-50 is majority voting.  The truthfulness *score* used for the
PR/ROC curves is the provider fraction, as the paper ranks triples "in
decreasing order of the number of providers".

With partial coverage the electorate for a triple is the set of sources
covering its domain, so a triple outside most sources' scope is not punished
for their silence -- the same scope rule the probabilistic fusers follow.
"""

from __future__ import annotations

import numpy as np

from repro.core.fusion import FusionResult, TruthFuser
from repro.core.observations import ObservationMatrix


class UnionKFuser(TruthFuser):
    """Accept triples provided by at least ``k_percent`` % of the sources.

    Scores are provider fractions in ``[0, 1]``; the acceptance threshold is
    ``k_percent / 100`` (inclusive, so "at least K%" holds exactly: with 5
    sources, UNION-25 needs 2 providers and UNION-75 needs 4, matching
    Figure 1c).
    """

    def __init__(self, k_percent: float) -> None:
        if not 0.0 < k_percent <= 100.0:
            raise ValueError(f"k_percent must be in (0, 100], got {k_percent}")
        self.k_percent = float(k_percent)
        self.name = f"Union-{k_percent:g}"

    def score(self, observations: ObservationMatrix) -> np.ndarray:
        votes = observations.provides.sum(axis=0).astype(float)
        electorate = observations.coverage.sum(axis=0).astype(float)
        return votes / np.maximum(electorate, 1.0)

    def fuse(self, observations: ObservationMatrix, threshold: float | None = None) -> FusionResult:
        """Score and threshold at ``k_percent / 100`` (callers may override)."""
        if threshold is None:
            threshold = self.k_percent / 100.0
        return super().fuse(observations, threshold=threshold)


class MajorityVoteFuser(UnionKFuser):
    """Majority voting -- the paper's UNION-50."""

    def __init__(self) -> None:
        super().__init__(50.0)
        self.name = "Majority"
