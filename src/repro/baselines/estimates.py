"""The Galland et al. fixed-point baselines: Cosine, 2-Estimates, 3-Estimates.

Reimplementation of the three corroboration models of [13] (A. Galland,
S. Abiteboul, A. Marian, P. Senellart, "Corroborating information from
disagreeing views", WSDM 2010), which the paper compares against (it reports
3-ESTIMATE, "the best model among the three" on its datasets).

All three iterate between an estimated *truth value* per fact and an
estimated *trust/error* per source:

- **Cosine** scores facts in ``[-1, 1]`` and measures a source's trust as
  the cosine similarity between its votes and the current fact scores,
  sharpened cubically as in the original paper.
- **2-Estimates** models a per-source error rate ``eps_s``; a positive vote
  contributes ``1 - eps_s`` to the fact's truth estimate and a negative vote
  ``eps_s``.  After every round estimates are *normalised* (linearly
  rescaled onto [0, 1]) -- Galland et al. found the fixed point collapses
  without this step.
- **3-Estimates** additionally models a per-fact difficulty ``delta_f`` so
  that the chance source ``s`` errs on fact ``f`` is ``eps_s * delta_f``;
  the two factors are fit by alternating least squares.

Open-world adaptation: the original models consume explicit negative claims
(from functional dependencies under closed-world semantics).  Under this
paper's open-world semantics no source ever asserts a triple is false, so --
like the paper's own comparison -- we synthesise a negative vote whenever a
source *covers* a triple's domain but does not provide the triple.
"""

from __future__ import annotations

import numpy as np

from repro.core.fusion import TruthFuser
from repro.core.observations import ObservationMatrix
from repro.util.validation import check_positive_int


def _vote_matrices(observations: ObservationMatrix) -> tuple[np.ndarray, np.ndarray]:
    """``(positive, negative)`` float vote matrices, shape (sources, facts)."""
    positive = observations.provides.astype(float)
    negative = (observations.coverage & ~observations.provides).astype(float)
    return positive, negative


def _rescale_unit(values: np.ndarray) -> np.ndarray:
    """Linear rescale onto [0, 1] (Galland's full normalisation, lambda = 1)."""
    low = float(values.min())
    high = float(values.max())
    if high - low < 1e-12:
        return np.full_like(values, 0.5)
    return (values - low) / (high - low)


def _normalise(values: np.ndarray, mode: str) -> np.ndarray:
    """Apply the configured normalisation: full rescale or plain clipping."""
    if mode == "rescale":
        return _rescale_unit(values)
    return np.clip(values, 0.0, 1.0)


def _fix_polarity(truth: np.ndarray, vote_share: np.ndarray) -> np.ndarray:
    """Flip a mirrored fixed point back to the natural polarity.

    The (truth, error) fixed-point equations admit a mirrored solution
    ``(1 - truth, 1 - error)``; on silence-heavy data the iteration can
    converge to it.  A positive vote asserts truth, so the truth estimate
    must correlate *positively* with the raw vote share -- if it does not,
    the mirror was reached and we flip back.
    """
    centred_truth = truth - truth.mean()
    centred_votes = vote_share - vote_share.mean()
    if float(centred_truth @ centred_votes) < 0.0:
        return 1.0 - truth
    return truth


class TwoEstimatesFuser(TruthFuser):
    """Galland et al.'s 2-Estimates with full normalisation.

    Parameters
    ----------
    iterations:
        Fixed-point rounds (the original converges within tens of rounds).
    prior_votes:
        Weight of a neutral pseudo-vote (value 0.5) mixed into every fact's
        truth estimate.  Facts with a one-source electorate would otherwise
        score a perfect ``1 - eps`` and crowd out well-attested facts in the
        ranking -- an artifact of sparse-coverage data the original paper
        (closed-world, dense votes) never faced.
    normalization:
        ``"rescale"`` (Galland's full normalisation, default) linearly maps
        each round's *truth* estimates onto [0, 1]; ``"clip"`` only clips.
        Rescaling converges faster but can land on the mirrored fixed
        point, which the polarity guard then flips back.  Source errors are
        always clipped, never rescaled.
    """

    name = "2-Estimates"

    def __init__(
        self,
        iterations: int = 20,
        prior_votes: float = 1.0,
        normalization: str = "rescale",
    ) -> None:
        self.iterations = check_positive_int(iterations, "iterations")
        if prior_votes < 0:
            raise ValueError(f"prior_votes must be non-negative, got {prior_votes}")
        if normalization not in ("rescale", "clip"):
            raise ValueError(
                f"normalization must be 'rescale' or 'clip', got {normalization!r}"
            )
        self.prior_votes = float(prior_votes)
        self.normalization = normalization

    def score(self, observations: ObservationMatrix) -> np.ndarray:
        positive, negative = _vote_matrices(observations)
        votes_per_fact = (positive + negative).sum(axis=0) + self.prior_votes
        votes_per_fact = np.maximum(votes_per_fact, 1.0)
        votes_per_source = np.maximum((positive + negative).sum(axis=1), 1.0)
        errors = np.full(observations.n_sources, 0.2)
        vote_share = positive.sum(axis=0) / votes_per_fact
        truth = vote_share  # voting start
        for _ in range(self.iterations):
            # theta_f = avg over voters of (1 - eps_s) [pos] / eps_s [neg],
            # with prior_votes neutral pseudo-votes of value 0.5.
            truth = (
                positive.T @ (1.0 - errors)
                + negative.T @ errors
                + 0.5 * self.prior_votes
            ) / votes_per_fact
            truth = _normalise(truth, self.normalization)
            # eps_s = avg over voted facts of (1 - theta_f) [pos] / theta_f [neg].
            # Errors are clipped, never rescaled: with near-equal sources a
            # full rescale would blow tiny sampling differences up to the
            # whole [0, 1] range and destroy the fixed point.
            errors = (
                positive @ (1.0 - truth) + negative @ truth
            ) / votes_per_source
            errors = np.clip(errors, 1e-6, 1.0 - 1e-6)
        return _fix_polarity(truth, vote_share)


class ThreeEstimatesFuser(TruthFuser):
    """Galland et al.'s 3-Estimates: error factored into source x difficulty.

    The per-(source, fact) error probability is ``eps_s * delta_f``; with
    the current truth estimates the residual error of a vote is
    ``1 - theta_f`` for a positive vote and ``theta_f`` for a negative one,
    and ``eps`` / ``delta`` are refit by alternating least squares each
    round, followed by the same normalisation as 2-Estimates.
    """

    name = "3-Estimates"

    def __init__(
        self,
        iterations: int = 20,
        prior_votes: float = 1.0,
        normalization: str = "rescale",
    ) -> None:
        self.iterations = check_positive_int(iterations, "iterations")
        if prior_votes < 0:
            raise ValueError(f"prior_votes must be non-negative, got {prior_votes}")
        if normalization not in ("rescale", "clip"):
            raise ValueError(
                f"normalization must be 'rescale' or 'clip', got {normalization!r}"
            )
        self.prior_votes = float(prior_votes)
        self.normalization = normalization

    def score(self, observations: ObservationMatrix) -> np.ndarray:
        positive, negative = _vote_matrices(observations)
        voted = positive + negative
        votes_per_fact = np.maximum(
            voted.sum(axis=0) + self.prior_votes, 1.0
        )
        errors = np.full(observations.n_sources, 0.2)
        difficulty = np.full(observations.n_triples, 0.5)
        vote_share = positive.sum(axis=0) / votes_per_fact
        truth = vote_share
        for _ in range(self.iterations):
            # Truth update: wrong-vote probability of s on f is eps_s*delta_f;
            # prior_votes neutral pseudo-votes of value 0.5 damp one-source
            # electorates (see TwoEstimatesFuser).
            wrong = np.clip(np.outer(errors, difficulty), 0.0, 1.0)
            contribution = positive * (1.0 - wrong) + negative * wrong
            truth = _normalise(
                (contribution.sum(axis=0) + 0.5 * self.prior_votes)
                / votes_per_fact,
                self.normalization,
            )
            # Residual error of each cast vote given the new truth.
            residual = positive * (1.0 - truth)[None, :] + negative * truth[None, :]
            # ALS: fit residual ~= eps_s * delta_f on the voted cells.
            denom_eps = voted @ (difficulty**2)
            errors = np.divide(
                residual @ difficulty,
                denom_eps,
                out=np.full_like(errors, 0.2),
                where=denom_eps > 1e-12,
            )
            errors = np.clip(errors, 1e-6, 1.0 - 1e-6)
            denom_delta = voted.T @ (errors**2)
            difficulty = np.divide(
                residual.T @ errors,
                denom_delta,
                out=np.full_like(difficulty, 0.5),
                where=denom_delta > 1e-12,
            )
            difficulty = np.clip(difficulty, 1e-6, 1.0)
        return _fix_polarity(truth, vote_share)


class CosineFuser(TruthFuser):
    """Galland et al.'s Cosine model with cubic trust sharpening.

    Facts are scored in ``[-1, 1]``; a source's trust is the cosine between
    its +/-1 vote vector and the fact scores over the facts it voted on.
    The returned scores are mapped to ``[0, 1]`` so the common 0.5 threshold
    corresponds to the model's natural sign test.
    """

    name = "Cosine"

    def __init__(self, iterations: int = 20, damping: float = 0.2) -> None:
        self.iterations = check_positive_int(iterations, "iterations")
        if not 0.0 <= damping < 1.0:
            raise ValueError(f"damping must be in [0, 1), got {damping}")
        self.damping = damping

    def score(self, observations: ObservationMatrix) -> np.ndarray:
        positive, negative = _vote_matrices(observations)
        votes = positive - negative  # +/-1 on voted cells, 0 elsewhere
        voted = positive + negative
        trust = np.full(observations.n_sources, 0.8)
        theta = np.clip(votes.sum(axis=0) / np.maximum(voted.sum(axis=0), 1.0), -1, 1)
        for _ in range(self.iterations):
            weight = trust**3
            theta_new = np.clip(
                (votes.T @ weight) / np.maximum(voted.T @ weight, 1e-12), -1.0, 1.0
            )
            theta = self.damping * theta + (1.0 - self.damping) * theta_new
            norms = np.sqrt(voted @ (theta**2)) * np.sqrt(
                np.maximum(voted.sum(axis=1), 1.0)
            )
            trust = np.clip(
                np.divide(
                    votes @ theta, norms, out=np.zeros_like(trust), where=norms > 1e-12
                ),
                0.0,
                1.0,
            )
        return (theta + 1.0) / 2.0
