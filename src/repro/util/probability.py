"""Probability numerics shared by all fusion algorithms.

The paper's formulas multiply ratios of recalls and false-positive rates; in
real data those parameters frequently touch 0 or 1 (a source that never makes
a mistake in the training sample, a subset of sources that never intersects).
The helpers here keep every computation inside the open interval (0, 1) so
that log-space math and odds ratios stay finite.
"""

from __future__ import annotations

import math

import numpy as np

#: Smallest probability-like value we allow.  Estimated rates are clamped to
#: ``[PROBABILITY_FLOOR, 1 - PROBABILITY_FLOOR]`` before entering any ratio,
#: which bounds a single source's log-odds contribution to ~ +/- 27.6.
PROBABILITY_FLOOR = 1e-12


def clamp_probability(value: float, floor: float = PROBABILITY_FLOOR) -> float:
    """Clamp ``value`` into the open interval ``(0, 1)``.

    Parameters
    ----------
    value:
        Any float; NaN is mapped to ``floor`` (a NaN estimate means "no
        evidence", and the floor is the least-informative defensible value).
    floor:
        Distance kept from both endpoints.

    Examples
    --------
    >>> clamp_probability(1.5)
    0.999999999999
    >>> clamp_probability(-0.2, floor=1e-6)
    1e-06
    """
    if math.isnan(value):
        return floor
    return min(max(value, floor), 1.0 - floor)


def safe_divide(numerator: float, denominator: float, default: float = 1.0) -> float:
    """Return ``numerator / denominator``, or ``default`` when undefined.

    The correlation factors of the paper (Eq. 14-17) are ratios of joint
    rates; when the denominator is zero the sources involved never co-occur
    in the training data and the factor carries no information, so callers
    fall back to the independence value ``1.0`` by default.
    """
    if denominator == 0.0:
        return default
    return numerator / denominator


def log_odds(probability: float) -> float:
    """Return ``log(p / (1 - p))`` with clamping for endpoint safety."""
    p = clamp_probability(probability)
    return math.log(p) - math.log1p(-p)


def odds_to_probability(odds: float) -> float:
    """Invert an odds ratio ``p / (1 - p)`` back into a probability."""
    if math.isinf(odds):
        return 1.0 - PROBABILITY_FLOOR if odds > 0 else PROBABILITY_FLOOR
    if odds <= 0.0:
        return PROBABILITY_FLOOR
    return clamp_probability(odds / (1.0 + odds))


def probability_from_mu(mu: float, prior: float) -> float:
    """Apply the paper's posterior formula ``Pr = 1 / (1 + (1-a)/a * 1/mu)``.

    ``mu`` is the likelihood ratio ``Pr(Ot | t) / Pr(Ot | not t)`` produced by
    any of the fusion rules (Theorems 3.1 and 4.2, Definition 4.5,
    Algorithm 1) and ``prior`` is the a-priori truth probability ``alpha``.
    """
    alpha = clamp_probability(prior)
    if mu <= 0.0:
        return PROBABILITY_FLOOR
    if math.isinf(mu):
        return 1.0 - PROBABILITY_FLOOR
    posterior_odds = (alpha / (1.0 - alpha)) * mu
    return odds_to_probability(posterior_odds)


def probability_from_mu_array(mu: np.ndarray, prior: float) -> np.ndarray:
    """Vectorized :func:`probability_from_mu` over an array of ``mu`` values.

    Element-wise semantics mirror the scalar transform exactly: non-positive
    or NaN likelihood ratios map to the probability floor, infinite ones to
    the ceiling, everything else through the posterior odds formula.
    """
    alpha = clamp_probability(prior)
    mu = np.asarray(mu, dtype=float)
    ratio = alpha / (1.0 - alpha)
    with np.errstate(over="ignore", invalid="ignore"):
        odds = ratio * mu
        probabilities = odds / (1.0 + odds)
    probabilities = np.where(np.isinf(odds), 1.0 - PROBABILITY_FLOOR, probabilities)
    probabilities = np.clip(
        probabilities, PROBABILITY_FLOOR, 1.0 - PROBABILITY_FLOOR
    )
    return np.where(
        np.isnan(mu) | (mu <= 0.0), PROBABILITY_FLOOR, probabilities
    )


def log_probability_from_mu(log_mu: float, prior: float) -> float:
    """Posterior from a log-likelihood-ratio; numerically stable sigmoid."""
    alpha = clamp_probability(prior)
    z = math.log(alpha) - math.log1p(-alpha) + log_mu
    # Stable logistic: avoid overflow in exp for large |z|.
    if z >= 0:
        return clamp_probability(1.0 / (1.0 + math.exp(-z)))
    expz = math.exp(z)
    return clamp_probability(expz / (1.0 + expz))
