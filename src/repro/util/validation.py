"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

import math
from typing import Any


#: Execution engines understood by the pattern-centric execution engine:
#: ``"vectorized"`` scores each distinct observation pattern once from
#: bit-packed statistics; ``"legacy"`` is the original per-triple /
#: boolean-mask path, kept for equivalence testing.
ENGINES = ("vectorized", "legacy")


def check_engine(value: str, name: str = "engine") -> str:
    """Validate and normalise an execution-engine name."""
    key = str(value).lower()
    if key not in ENGINES:
        raise ValueError(
            f"unknown {name} {value!r}; expected one of {ENGINES}"
        )
    return key


#: Accumulate implementations for the batched union plans: ``"numpy"`` runs
#: the compiled gather + segmented-sweep path; ``"python"`` is the per-term
#: reference walk, kept for equivalence testing and benchmarking.
ACCUMULATE_MODES = ("numpy", "python")


def check_accumulate(value: str, name: str = "accumulate") -> str:
    """Validate and normalise a plan-accumulate implementation name."""
    key = str(value).lower()
    if key not in ACCUMULATE_MODES:
        raise ValueError(
            f"unknown {name} {value!r}; expected one of {ACCUMULATE_MODES}"
        )
    return key


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in ``[0, 1]`` and return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if math.isnan(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_fraction(value: float, name: str) -> float:
    """Validate that ``value`` is a strict fraction in ``(0, 1)``."""
    check_probability(value, name)
    if value in (0.0, 1.0):
        raise ValueError(f"{name} must be strictly inside (0, 1), got {value!r}")
    return float(value)


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if math.isnan(value) or value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return float(value)


def check_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a strictly positive integer and return it."""
    check_non_negative_int(value, name)
    if value == 0:
        raise ValueError(f"{name} must be positive, got 0")
    return value
