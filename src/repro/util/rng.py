"""Seeded random-number-generator plumbing for reproducible experiments.

Every stochastic component (synthetic generators, the LTM Gibbs sampler, the
crowd-label simulator) accepts either a seed or a ``numpy.random.Generator``
and routes it through :func:`ensure_rng`, so an experiment is reproducible
from a single integer.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def ensure_rng(seed_or_rng: RngLike = None) -> np.random.Generator:
    """Coerce ``seed_or_rng`` into a ``numpy.random.Generator``.

    ``None`` produces a freshly seeded generator; an ``int`` produces a
    deterministic generator; an existing generator passes through untouched
    (so callers can share one stream across components).
    """
    if seed_or_rng is None:
        return np.random.default_rng()
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if isinstance(seed_or_rng, (int, np.integer)):
        return np.random.default_rng(int(seed_or_rng))
    raise TypeError(
        "expected an int seed, a numpy Generator, or None; "
        f"got {type(seed_or_rng).__name__}"
    )


def spawn_rngs(seed_or_rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed or generator.

    Independent streams keep per-source randomness decoupled, so adding a
    source to a synthetic configuration does not reshuffle the triples that
    existing sources provide.
    """
    root = ensure_rng(seed_or_rng)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
