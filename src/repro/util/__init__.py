"""Shared utilities: probability numerics, subset iteration, validation, RNG.

These helpers are deliberately small and dependency-free so that the core
fusion modules stay focused on the paper's math.
"""

from repro.util.probability import (
    PROBABILITY_FLOOR,
    clamp_probability,
    log_odds,
    odds_to_probability,
    probability_from_mu,
    safe_divide,
)
from repro.util.rng import ensure_rng
from repro.util.subsets import (
    iter_subsets,
    iter_subsets_of_size,
    subset_parity,
)
from repro.util.validation import (
    check_fraction,
    check_positive,
    check_probability,
)

__all__ = [
    "PROBABILITY_FLOOR",
    "clamp_probability",
    "log_odds",
    "odds_to_probability",
    "probability_from_mu",
    "safe_divide",
    "ensure_rng",
    "iter_subsets",
    "iter_subsets_of_size",
    "subset_parity",
    "check_fraction",
    "check_positive",
    "check_probability",
]
