"""Subset iteration helpers for the inclusion-exclusion computations.

The exact solution (Theorem 4.2) sums over every subset of the non-providing
sources; the elastic approximation (Algorithm 1) sums over subsets of bounded
size.  Both loops live here so the fusers read like the paper's equations.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Sequence, Tuple


def iter_subsets(items: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """Yield every subset of ``items`` (including the empty set) as a tuple.

    Subsets are produced in order of increasing size, matching the level
    structure of the elastic approximation.

    >>> list(iter_subsets([1, 2]))
    [(), (1,), (2,), (1, 2)]
    """
    for size in range(len(items) + 1):
        yield from combinations(items, size)


def iter_subsets_of_size(items: Sequence[int], size: int) -> Iterator[Tuple[int, ...]]:
    """Yield every subset of ``items`` with exactly ``size`` elements."""
    if size < 0:
        raise ValueError(f"subset size must be non-negative, got {size}")
    yield from combinations(items, size)


def subset_parity(subset_size: int) -> int:
    """Return ``(-1) ** subset_size`` -- the inclusion-exclusion sign."""
    return -1 if subset_size % 2 else 1


def count_subsets(n_items: int, max_size: int | None = None) -> int:
    """Number of subsets of an ``n_items``-element set, optionally bounded.

    Used by the fusion API to predict the cost of an exact computation before
    committing to it (and to fall back to the elastic approximation).
    """
    if n_items < 0:
        raise ValueError(f"n_items must be non-negative, got {n_items}")
    if max_size is None or max_size >= n_items:
        return 2 ** n_items
    total = 0
    term = 1  # C(n, 0)
    for k in range(max_size + 1):
        total += term
        term = term * (n_items - k) // (k + 1)
    return total
