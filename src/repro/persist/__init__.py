"""Durable serving state: snapshots, write-ahead log, crash-exact recovery.

The layer cake, bottom up:

- :mod:`repro.persist.format` -- checksummed frame/payload codec shared
  by every durable byte (packed matrices ride as uint64 words).
- :mod:`repro.persist.atomic` -- the only module that opens files for
  writing (REP007): fsync'd atomic replace, fault-aware durable writes
  (the ``persist``/``torn-write`` injection point), real SIGKILL crash
  points for the crash harness.
- :mod:`repro.persist.wal` -- append-before-apply mutation/refit records
  with torn-tail self-repair.
- :mod:`repro.persist.snapshot` -- atomic versioned generation snapshots
  with integer-statistics integrity cross-checks.
- :mod:`repro.persist.checkpoint` -- the live-side
  :class:`Checkpointer` driving WAL appends and snapshot cadence from
  :class:`~repro.core.api.ScoringSession` refit hooks.
- :mod:`repro.persist.recovery` -- :class:`RecoveryManager`: newest
  valid snapshot (older-snapshot fallback on corruption) + WAL-suffix
  replay through ``refit_delta``, reconstructing the exact pre-crash
  generation (bit-identical scores; see ``run_serving_crash``).
- :mod:`repro.persist.trace` -- the WAL record format as a public
  recorded-mutation-trace artifact (record + replay).
"""

from repro.persist.atomic import (
    CRASH_ENV_VAR,
    CRASH_POINT_SNAPSHOT,
    CRASH_POINT_WAL,
    atomic_write,
    crash_hook,
    reset_crash_points,
)
from repro.persist.checkpoint import Checkpointer
from repro.persist.format import FORMAT_VERSION, PersistFormatError
from repro.persist.recovery import (
    RecoveredState,
    RecoveryError,
    RecoveryManager,
    SnapshotIntegrityError,
)
from repro.persist.snapshot import SnapshotState, iter_snapshot_paths
from repro.persist.trace import record_mutation_trace, replay_mutation_trace
from repro.persist.wal import WAL_FILENAME, WriteAheadLog, scan_wal

__all__ = [
    "CRASH_ENV_VAR",
    "CRASH_POINT_SNAPSHOT",
    "CRASH_POINT_WAL",
    "Checkpointer",
    "FORMAT_VERSION",
    "PersistFormatError",
    "RecoveredState",
    "RecoveryError",
    "RecoveryManager",
    "SnapshotIntegrityError",
    "SnapshotState",
    "WAL_FILENAME",
    "WriteAheadLog",
    "atomic_write",
    "crash_hook",
    "iter_snapshot_paths",
    "record_mutation_trace",
    "replay_mutation_trace",
    "reset_crash_points",
    "scan_wal",
]
