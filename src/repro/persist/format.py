"""Framed, checksummed binary container shared by snapshots and the WAL.

One *payload* is a JSON metadata document plus a set of named numpy
arrays, encoded with explicit little-endian lengths so decoding never
trusts the file size.  One *frame* wraps a payload with a magic tag, a
format version, a CRC32, and the payload length -- the unit of torn-tail
detection: a frame either round-trips exactly (magic, version, length,
and checksum all agree) or the scan stops before it.

Snapshots are a single frame per file; the write-ahead log is a
concatenation of frames.  Both therefore share one validity notion and
one scanner (:func:`read_frame`).

Bool matrices are transported as their packed uint64 words plus a bit
count (:mod:`repro.core.bitset` layout) -- the same representation the
scoring engine consumes, so the snapshot of an observation matrix is the
packed matrix itself, byte for byte, and recovery cannot introduce a
re-encoding step that could drift.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, Mapping, Tuple

import numpy as np

from repro.core.bitset import WORD_BITS

#: Leading bytes of every frame ("RePro STate").
MAGIC = b"RPST"

#: Bump on any incompatible payload-layout change; readers reject
#: versions they do not know rather than guessing.
FORMAT_VERSION = 1

# magic(4) + version(u16) + crc32(u32) + payload length(u64)
_FRAME_HEADER = struct.Struct("<4sHIQ")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


class PersistFormatError(RuntimeError):
    """A frame or payload failed validation (corrupt, torn, or foreign)."""


def encode_payload(
    meta: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
) -> bytes:
    """Serialize ``meta`` (JSON-able) plus named arrays into one payload."""
    meta_json = json.dumps(
        dict(meta), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    parts = [_U32.pack(len(meta_json)), meta_json, _U32.pack(len(arrays))]
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        header = json.dumps(
            {"name": name, "dtype": array.dtype.str, "shape": list(array.shape)},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        raw = array.tobytes()
        parts.extend((_U32.pack(len(header)), header, _U64.pack(len(raw)), raw))
    return b"".join(parts)


def decode_payload(data: bytes) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Inverse of :func:`encode_payload`; raises on any malformation."""
    try:
        offset = 0
        meta_len = _U32.unpack_from(data, offset)[0]
        offset += _U32.size
        meta = json.loads(data[offset : offset + meta_len].decode("utf-8"))
        offset += meta_len
        n_arrays = _U32.unpack_from(data, offset)[0]
        offset += _U32.size
        arrays: Dict[str, np.ndarray] = {}
        for _ in range(n_arrays):
            header_len = _U32.unpack_from(data, offset)[0]
            offset += _U32.size
            header = json.loads(data[offset : offset + header_len].decode("utf-8"))
            offset += header_len
            raw_len = _U64.unpack_from(data, offset)[0]
            offset += _U64.size
            raw = data[offset : offset + raw_len]
            if len(raw) != raw_len:
                raise PersistFormatError("payload truncated inside array blob")
            offset += raw_len
            array = np.frombuffer(raw, dtype=np.dtype(header["dtype"]))
            arrays[str(header["name"])] = array.reshape(header["shape"]).copy()
        if offset != len(data):
            raise PersistFormatError("trailing bytes after last array blob")
        if not isinstance(meta, dict):
            raise PersistFormatError("payload metadata is not a JSON object")
        return meta, arrays
    except PersistFormatError:
        raise
    except Exception as exc:
        raise PersistFormatError(f"malformed payload: {exc}") from exc


def encode_frame(payload: bytes) -> bytes:
    """Wrap a payload with magic, version, CRC32, and length."""
    header = _FRAME_HEADER.pack(
        MAGIC, FORMAT_VERSION, zlib.crc32(payload) & 0xFFFFFFFF, len(payload)
    )
    return header + payload


def frame_header_size() -> int:
    """Byte length of the fixed frame header."""
    return _FRAME_HEADER.size


def read_frame(data: bytes, offset: int) -> Tuple[bytes, int]:
    """Validate and extract one frame at ``offset``.

    Returns ``(payload, next_offset)``.  Raises
    :class:`PersistFormatError` on *any* defect -- short header, wrong
    magic, unknown version, truncated payload, or checksum mismatch --
    which a WAL scan interprets as "the valid prefix ends here".
    """
    end = offset + _FRAME_HEADER.size
    if end > len(data):
        raise PersistFormatError("torn frame header")
    magic, version, crc, length = _FRAME_HEADER.unpack_from(data, offset)
    if magic != MAGIC:
        raise PersistFormatError(f"bad frame magic {magic!r}")
    if version != FORMAT_VERSION:
        raise PersistFormatError(f"unsupported format version {version}")
    payload = data[end : end + length]
    if len(payload) != length:
        raise PersistFormatError("torn frame payload")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise PersistFormatError("frame checksum mismatch")
    return payload, end + length


def pack_bool_matrix(matrix: np.ndarray) -> Tuple[np.ndarray, int]:
    """Bool matrix -> (uint64 word rows, n_bits) in bitset layout."""
    from repro.core.bitset import pack_bool_rows

    packed = pack_bool_rows(np.asarray(matrix, dtype=bool))
    return packed, int(np.asarray(matrix).shape[-1])


def unpack_bool_matrix(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bool_matrix` (exact, including zero tails)."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim == 1:
        words = words[np.newaxis, :]
        squeeze = True
    else:
        squeeze = False
    n_words_needed = (n_bits + WORD_BITS - 1) // WORD_BITS
    if words.shape[1] < n_words_needed:
        raise PersistFormatError(
            f"{words.shape[1]} words cannot hold {n_bits} bits"
        )
    as_bytes = words.view(np.uint8).reshape(words.shape[0], -1)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")[:, :n_bits]
    result = bits.astype(bool)
    return result[0] if squeeze else result
