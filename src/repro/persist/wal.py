"""Write-ahead log: append-before-apply mutation and refit records.

The WAL is a flat file of checksummed frames (:mod:`repro.persist.format`).
Three record types cover everything the serving loop does to durable
state:

- ``mutation`` -- an observation-matrix change, stored as a dirty-column
  block (the column ids that may differ, with their full new ``provides``
  / ``coverage`` slices) plus the packed truth labels.  The diff comes
  from :func:`repro.core.deltas.dirty_columns`, the same word-granularity
  machinery the delta scorer trusts; because the block stores absolute
  new values (not XOR deltas), applying a record to a matrix already in
  the post-state is a no-op -- duplicate replay is idempotent.
- ``refit_begin`` -- appended *before* a refit is applied.  A begin with
  no matching publish after it means the process died mid-refit; recovery
  drops it, rolling the session back to the last published generation.
- ``refit_publish`` -- appended after a new generation is published.

Durability discipline: every append is fsync'd before :meth:`append`
returns, and a failed append (torn write, injected fault, IO error)
truncates the file back to its pre-append offset before re-raising --
so mid-file corruption can never strand valid records behind it, and the
only invalid bytes a scan can meet are a torn *tail*.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.deltas import dirty_columns
from repro.core.observations import ObservationMatrix
from repro.persist.atomic import (
    CRASH_POINT_WAL,
    crash_hook,
    durable_write,
    open_for_append,
    truncate_file,
)
from repro.persist.format import (
    PersistFormatError,
    decode_payload,
    encode_frame,
    encode_payload,
    pack_bool_matrix,
    read_frame,
    unpack_bool_matrix,
)

#: Record-type tags.
RECORD_MUTATION = "mutation"
RECORD_REFIT_BEGIN = "refit_begin"
RECORD_REFIT_PUBLISH = "refit_publish"

#: Default WAL file name inside a checkpoint directory.
WAL_FILENAME = "wal.log"

#: One decoded record: (meta, arrays).
Record = Tuple[Dict[str, Any], Dict[str, np.ndarray]]


def mutation_record(
    previous: ObservationMatrix,
    current: ObservationMatrix,
    labels: np.ndarray,
    *,
    seq: int,
    step: int = -1,
) -> Optional[Record]:
    """Encode ``previous -> current`` as a dirty-column block.

    Returns ``None`` when the matrices are bit-identical at equal width
    (nothing to log).  ``step`` is an optional trace-step tag (``-1`` =
    untagged) used by the crash harness to locate its resume point.
    """
    if previous.n_sources != current.n_sources:
        raise ValueError(
            "mutation records require a fixed source set "
            f"({previous.n_sources} -> {current.n_sources} sources)"
        )
    if current.n_triples >= previous.n_triples:
        columns = dirty_columns(previous, current)
        assert columns is not None  # source counts checked above
    else:
        # Width shrink is rare enough that a full-width block is fine.
        columns = np.arange(current.n_triples, dtype=np.int64)
    if (
        columns.size == 0
        and current.n_triples == previous.n_triples
        and step < 0
    ):
        return None
    labels = np.asarray(labels, dtype=bool)
    if labels.shape != (current.n_triples,):
        raise ValueError(
            f"labels shape {labels.shape} != ({current.n_triples},)"
        )
    labels_words, labels_bits = pack_bool_matrix(labels[np.newaxis, :])
    meta = {
        "type": RECORD_MUTATION,
        "seq": int(seq),
        "step": int(step),
        "n_sources": int(current.n_sources),
        "prev_triples": int(previous.n_triples),
        "n_triples": int(current.n_triples),
        "labels_bits": int(labels_bits),
    }
    arrays = {
        "columns": np.asarray(columns, dtype=np.int64),
        "provides": np.asarray(current.provides[:, columns], dtype=bool),
        "coverage": np.asarray(current.coverage[:, columns], dtype=bool),
        "labels_words": labels_words[0],
    }
    return meta, arrays


def apply_mutation(
    matrix: ObservationMatrix,
    meta: Mapping[str, Any],
    arrays: Mapping[str, np.ndarray],
) -> Tuple[ObservationMatrix, np.ndarray]:
    """Apply a mutation record; returns the new ``(matrix, labels)``.

    Idempotent: applying a record to a matrix already in the post-state
    reproduces that state exactly (the block stores absolute values).
    """
    if int(meta["n_sources"]) != matrix.n_sources:
        raise PersistFormatError(
            f"mutation record has {meta['n_sources']} sources, "
            f"state has {matrix.n_sources}"
        )
    n_new = int(meta["n_triples"])
    shared = min(matrix.n_triples, n_new)
    provides = np.zeros((matrix.n_sources, n_new), dtype=bool)
    coverage = np.zeros((matrix.n_sources, n_new), dtype=bool)
    provides[:, :shared] = matrix.provides[:, :shared]
    coverage[:, :shared] = matrix.coverage[:, :shared]
    columns = np.asarray(arrays["columns"], dtype=np.int64)
    provides[:, columns] = np.asarray(arrays["provides"], dtype=bool)
    coverage[:, columns] = np.asarray(arrays["coverage"], dtype=bool)
    labels = unpack_bool_matrix(
        arrays["labels_words"], int(meta["labels_bits"])
    )
    triple_index = (
        matrix.triple_index if n_new == matrix.n_triples else None
    )
    return (
        ObservationMatrix(
            provides,
            matrix.source_names,
            triple_index=triple_index,
            coverage=coverage,
        ),
        labels,
    )


def refit_begin_record(*, seq: int, mode: str) -> Record:
    """A refit is about to be applied (``mode`` is ``delta`` or ``cold``)."""
    return {"type": RECORD_REFIT_BEGIN, "seq": int(seq), "mode": mode}, {}


def refit_publish_record(*, seq: int, generation: int) -> Record:
    """A refitted generation was published."""
    return (
        {
            "type": RECORD_REFIT_PUBLISH,
            "seq": int(seq),
            "generation": int(generation),
        },
        {},
    )


@dataclass(frozen=True)
class WalScan:
    """Result of scanning a WAL file for its valid prefix."""

    records: Tuple[Record, ...]
    valid_bytes: int
    total_bytes: int

    @property
    def torn_bytes(self) -> int:
        """Bytes past the last valid record (a torn tail, or zero)."""
        return self.total_bytes - self.valid_bytes


def scan_wal(path: Path) -> WalScan:
    """Decode the valid record prefix of ``path`` (missing file = empty).

    The scan stops at the first frame that fails validation -- short
    header, bad magic, truncated payload, checksum mismatch, or a
    payload that frames correctly but does not decode.  Everything
    before it is trusted (each record carried its own checksum).
    """
    path = Path(path)
    if not path.exists():
        return WalScan((), 0, 0)
    data = path.read_bytes()
    records: List[Record] = []
    offset = 0
    while offset < len(data):
        try:
            payload, next_offset = read_frame(data, offset)
            meta, arrays = decode_payload(payload)
        except PersistFormatError:
            break
        records.append((meta, arrays))
        offset = next_offset
    return WalScan(tuple(records), offset, len(data))


class WriteAheadLog:
    """Append-only, fsync'd record log with torn-tail self-repair.

    Opening an existing log scans it and physically truncates any torn
    tail, so the append offset always sits at the end of the valid
    prefix.  Not thread-safe by itself -- the owning
    :class:`~repro.persist.checkpoint.Checkpointer` serializes access.
    """

    def __init__(self, path: Path, *, fsync: bool = True) -> None:
        self._path = Path(path)
        self._fsync = fsync
        scan = scan_wal(self._path)
        if scan.torn_bytes:
            truncate_file(self._path, scan.valid_bytes, fsync=fsync)
        self._offset = scan.valid_bytes
        self._records = len(scan.records)
        self._handle: Optional[IO[bytes]] = open_for_append(self._path)

    @property
    def path(self) -> Path:
        return self._path

    @property
    def offset(self) -> int:
        """Current append offset (== byte length of the valid prefix)."""
        return self._offset

    @property
    def records_appended(self) -> int:
        """Valid records in the file (pre-existing plus appended here)."""
        return self._records

    def append(
        self,
        meta: Mapping[str, Any],
        arrays: Optional[Mapping[str, np.ndarray]] = None,
    ) -> None:
        """Durably append one record; repairs the tail on failure.

        If the write fails part-way (torn-write fault, IO error), the
        file is truncated back to the pre-append offset before the
        exception propagates -- a failed append leaves the log exactly
        as it was, so the caller may simply retry.
        """
        if self._handle is None:
            raise ValueError("write-ahead log is closed")
        frame = encode_frame(encode_payload(meta, arrays or {}))
        try:
            durable_write(self._handle, frame, fsync=self._fsync)
        except BaseException:
            self._repair_tail()
            raise
        self._offset += len(frame)
        self._records += 1
        crash_hook(CRASH_POINT_WAL)

    def _repair_tail(self) -> None:
        if self._handle is not None:
            self._handle.close()
        truncate_file(self._path, self._offset, fsync=self._fsync)
        self._handle = open_for_append(self._path)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __getstate__(self) -> None:
        raise TypeError(
            "WriteAheadLog holds an open file handle and cannot be "
            "pickled; recover from the file on the other side instead"
        )
