"""Crash-exact recovery: newest valid snapshot + WAL-suffix replay.

The recovery argument, end to end:

1. A snapshot stores the packed observation matrices, packed labels, and
   session config of a published generation.  Every quality parameter
   the session serves is a pure float function of integer sufficient
   statistics derived from exactly these inputs
   (``quality_from_counts``), so a session rebuilt cold from a snapshot
   is **bit-identical** to the one that wrote it -- the same invariant
   the delta-refit oracle (`run_serving(refit_every=...)`) pins on every
   CI run.  The snapshot additionally stores the writer's integer
   counters; the rebuilt model must reproduce them exactly or the
   snapshot is treated as corrupt.
2. WAL records were appended *before* they were applied, so the WAL
   suffix past the snapshot's sequence number is a complete account of
   everything the dead process may have done.  Replaying mutations
   rebuilds the observation state; replaying publish records re-runs
   ``refit_delta`` -- bit-identical to the original refit by the same
   contract.  A ``refit_begin`` with no matching publish is dropped:
   the dead process never published, so the recovered session correctly
   rolls back to the last published generation.
3. Validation failures fall back: a corrupt newest snapshot (bad CRC,
   torn rename, statistics mismatch) is skipped and the next-older one
   is loaded instead, at the cost of a longer replay -- never a refusal
   while any valid snapshot exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.api import ScoringSession
from repro.core.observations import ObservationMatrix
from repro.persist.checkpoint import Checkpointer
from repro.persist.format import PersistFormatError
from repro.persist.snapshot import (
    SnapshotState,
    iter_snapshot_paths,
    load_snapshot,
    parse_snapshot_name,
)
from repro.persist.wal import (
    RECORD_MUTATION,
    RECORD_REFIT_BEGIN,
    RECORD_REFIT_PUBLISH,
    WAL_FILENAME,
    WalScan,
    apply_mutation,
    scan_wal,
)


class RecoveryError(RuntimeError):
    """No valid snapshot could be recovered from the directory."""


class SnapshotIntegrityError(PersistFormatError):
    """A snapshot decoded cleanly but failed a cross-check (treated as
    corrupt, so the caller falls back to an older snapshot)."""


@dataclass(frozen=True)
class RecoveredState:
    """What :meth:`RecoveryManager.recover` reconstructed."""

    session: ScoringSession
    #: The durable observation state -- may be *ahead* of the session's
    #: last published generation (mutations logged but not yet refitted
    #: on; exactly what the dead process had admitted).
    observations: ObservationMatrix
    labels: np.ndarray
    config: Dict[str, Any]
    #: Last *published* generation (mid-refit deaths roll back to it).
    generation: int
    #: Highest WAL sequence number incorporated (resume point).
    wal_seq: int
    #: Trace-step watermark from tagged mutation records.
    mutation_steps: int
    snapshot_path: Path
    snapshots_skipped: Tuple[str, ...] = ()
    records_replayed: int = 0
    refits_replayed: int = 0
    rolled_back_refits: int = 0
    wal_records_total: int = 0
    wal_valid_bytes: int = 0
    wal_torn_bytes: int = 0
    statistics_verified: bool = False

    def report(self) -> Dict[str, Any]:
        """JSON-able summary (crash-harness and CLI output)."""
        return {
            "generation": self.generation,
            "wal_seq": self.wal_seq,
            "mutation_steps": self.mutation_steps,
            "snapshot": self.snapshot_path.name,
            "snapshots_skipped": list(self.snapshots_skipped),
            "records_replayed": self.records_replayed,
            "refits_replayed": self.refits_replayed,
            "rolled_back_refits": self.rolled_back_refits,
            "wal_records_total": self.wal_records_total,
            "wal_valid_bytes": self.wal_valid_bytes,
            "wal_torn_bytes": self.wal_torn_bytes,
            "statistics_verified": self.statistics_verified,
        }


class RecoveryManager:
    """Rebuild the exact pre-crash session from a checkpoint directory."""

    def __init__(self, directory: Path, *, fsync: bool = True) -> None:
        self._dir = Path(directory)
        self._fsync = fsync

    @staticmethod
    def has_state(directory: Path) -> bool:
        """Whether ``directory`` holds anything recoverable."""
        return bool(iter_snapshot_paths(Path(directory)))

    def recover(self, **session_overrides: Any) -> RecoveredState:
        """Load the newest valid snapshot and replay the WAL suffix.

        ``session_overrides`` replace config fields (e.g. ``workers``)
        that describe the *host*, not the state -- they cannot change
        scores, which are pinned by the matrices and labels.
        """
        scan = scan_wal(self._dir / WAL_FILENAME)
        skipped: List[str] = []
        for path in iter_snapshot_paths(self._dir):
            try:
                state = load_snapshot(path)
                return self._rebuild(path, state, scan, skipped, session_overrides)
            except PersistFormatError as exc:
                # fault-barrier: this snapshot is corrupt (torn rename,
                # bad checksum, failed integrity cross-check); fall back
                # to the next-older one -- degraded recovery beats none.
                skipped.append(f"{path.name}: {exc}")
                continue
        raise RecoveryError(
            f"no valid snapshot in {self._dir} "
            f"(skipped: {skipped or 'none -- directory empty'})"
        )

    def _rebuild(
        self,
        snapshot_file: Path,
        state: SnapshotState,
        scan: WalScan,
        skipped: List[str],
        session_overrides: Dict[str, Any],
    ) -> RecoveredState:
        config = dict(state.config)
        config.update(session_overrides)
        if config.get("dropped_options"):
            raise RecoveryError(
                "snapshot config lost non-serializable options: "
                f"{config['dropped_options']}"
            )
        session = _build_session(state.observations, state.labels, config)
        verified = _verify_statistics(session, state)
        observations = state.observations
        labels = state.labels
        generation = state.generation
        mutation_steps = state.mutation_steps
        last_seq = state.wal_seq
        pending_begin: Optional[Dict[str, Any]] = None
        replayed = 0
        refits = 0
        for meta, arrays in scan.records:
            seq = int(meta.get("seq", 0))
            if seq <= state.wal_seq:
                continue
            record_type = meta.get("type")
            if record_type == RECORD_MUTATION:
                observations, labels = apply_mutation(observations, meta, arrays)
                step = int(meta.get("step", -1))
                if step >= 0:
                    mutation_steps = max(mutation_steps, step + 1)
            elif record_type == RECORD_REFIT_BEGIN:
                pending_begin = dict(meta)
            elif record_type == RECORD_REFIT_PUBLISH:
                mode = (
                    pending_begin.get("mode", "delta")
                    if pending_begin is not None
                    else "delta"
                )
                if mode == "cold":
                    session.refit(observations, labels)
                else:
                    session.refit_delta(observations, labels)
                generation = int(meta["generation"])
                pending_begin = None
                refits += 1
            else:
                raise PersistFormatError(
                    f"unknown WAL record type {record_type!r}"
                )
            last_seq = seq
            replayed += 1
        return RecoveredState(
            session=session,
            observations=observations,
            labels=labels,
            config=config,
            generation=generation,
            wal_seq=last_seq,
            mutation_steps=mutation_steps,
            snapshot_path=snapshot_file,
            snapshots_skipped=tuple(skipped),
            records_replayed=replayed,
            refits_replayed=refits,
            rolled_back_refits=1 if pending_begin is not None else 0,
            wal_records_total=len(scan.records),
            wal_valid_bytes=scan.valid_bytes,
            wal_torn_bytes=scan.torn_bytes,
            statistics_verified=verified,
        )

    def resume(
        self, recovered: RecoveredState, **policy: Any
    ) -> Checkpointer:
        """Re-arm durability on the recovered session.

        The returned :class:`Checkpointer` continues the same WAL (its
        open path truncates any torn tail) and numbers new snapshots
        past every existing file, valid or not.
        """
        max_index = 0
        for path in iter_snapshot_paths(self._dir):
            parsed = parse_snapshot_name(path)
            if parsed is not None:
                max_index = max(max_index, parsed[0])
        checkpointer = Checkpointer(self._dir, fsync=self._fsync, **policy)
        checkpointer.resume_from(
            seq=recovered.wal_seq,
            generation=recovered.generation,
            mutation_steps=recovered.mutation_steps,
            snapshot_index=max_index,
            observations=recovered.observations,
            labels=recovered.labels,
        )
        recovered.session.attach_checkpointer(checkpointer)
        return checkpointer


def _build_session(
    observations: ObservationMatrix,
    labels: np.ndarray,
    config: Dict[str, Any],
) -> ScoringSession:
    kwargs = {
        key: config[key]
        for key in (
            "method",
            "prior",
            "smoothing",
            "engine",
            "threshold",
            "workers",
            "shard_size",
            "delta",
            "micro_batch",
        )
        if key in config
    }
    options = dict(config.get("options", {}))
    return ScoringSession(observations, labels, **kwargs, **options)


def _verify_statistics(session: ScoringSession, state: SnapshotState) -> bool:
    """Cross-check rebuilt integer counters against the snapshot's."""
    if state.statistics is None:
        return False
    rebuilt = session.persist_statistics()
    if rebuilt is None:
        return False
    for name, stored in state.statistics.items():
        if name not in rebuilt or not np.array_equal(rebuilt[name], stored):
            raise SnapshotIntegrityError(
                f"sufficient statistic {name!r} does not match the "
                "snapshot (rebuilt model disagrees with the writer)"
            )
    return True
