"""Live-side durability driver: WAL appends + snapshot policy.

A :class:`Checkpointer` owns one checkpoint directory for one serving
session.  It keeps the *last durable state* (observation matrix, labels)
and turns the serving loop's events into durable records:

- :meth:`log_mutation` -- an admitted observation change, appended as a
  dirty-column WAL record before anything acts on it;
- :meth:`prepare_refit` / :meth:`commit_refit` -- invoked by
  :class:`~repro.core.api.ScoringSession` around every refit (under its
  refit lock): prepare makes the refit *input* durable (mutation record
  if the matrix moved, then ``refit_begin``), commit appends
  ``refit_publish`` and applies the snapshot cadence;
- :meth:`snapshot` -- an atomic full-state snapshot, pruned to a bounded
  history that always retains a fallback.

Failure policy: **availability over durability.**  A WAL append that
fails (torn-write fault, IO error) is retried once -- the log
self-repairs its tail, so a retry is safe -- and a second failure flips
the checkpointer into a degraded mode that counts skipped records
instead of raising into the serving path.  The chaos suite pins exactly
this: persist faults never break serving, and the degradation is visible
in :attr:`stats`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.faults import InjectedFault
from repro.core.locktrace import make_lock
from repro.core.observations import ObservationMatrix
from repro.persist import wal as wal_records
from repro.persist.snapshot import (
    SnapshotState,
    iter_snapshot_paths,
    prune_snapshots,
    write_snapshot,
)
from repro.persist.wal import WAL_FILENAME, WriteAheadLog


class Checkpointer:
    """Durable-state writer for one serving session (see module docs)."""

    def __init__(
        self,
        directory: Path,
        *,
        snapshot_every: int = 4,
        keep_snapshots: int = 3,
        fsync: bool = True,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._snapshot_every = int(snapshot_every)
        self._keep_snapshots = int(keep_snapshots)
        self._fsync = fsync
        self._lock = make_lock("Checkpointer._lock")
        # guarded-by: _lock
        self._wal: Optional[WriteAheadLog] = None
        # guarded-by: _lock
        self._seq = 0
        # guarded-by: _lock
        self._snapshot_index = 0
        # guarded-by: _lock
        self._generation = 0
        # guarded-by: _lock
        self._mutation_steps = 0
        # guarded-by: _lock
        self._refits_since_snapshot = 0
        # guarded-by: _lock
        self._state: Optional[Tuple[ObservationMatrix, np.ndarray]] = None
        # guarded-by: _lock
        self._degraded = False
        # guarded-by: _lock
        self._counters: Dict[str, int] = {
            "records": 0,
            "mutations": 0,
            "refits": 0,
            "snapshots": 0,
            "torn_repairs": 0,
            "skipped_degraded": 0,
            "snapshot_failures": 0,
        }

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def attach(
        cls,
        session: Any,
        observations: ObservationMatrix,
        labels: np.ndarray,
        directory: Path,
        **policy: Any,
    ) -> "Checkpointer":
        """Start durability for ``session`` from a fresh directory.

        Writes snapshot 0 (the initial generation, so a fallback chain
        exists from the first byte) and attaches the refit hooks.
        """
        checkpointer = cls(directory, **policy)
        checkpointer.begin(session, observations, labels)
        return checkpointer

    def begin(
        self,
        session: Any,
        observations: ObservationMatrix,
        labels: np.ndarray,
    ) -> None:
        """Record the session's initial generation and attach hooks."""
        config = session.persist_config()
        if str(config.get("method", "")).lower() == "em":
            raise ValueError(
                "checkpointing requires the count-based bit-identity "
                'contract; method="em" refits are not bitwise '
                "reproducible and cannot be recovered exactly"
            )
        if config.get("dropped_options"):
            raise ValueError(
                "session options are not JSON-serializable and would be "
                f"lost in a snapshot: {config['dropped_options']}"
            )
        with self._lock:
            self._ensure_wal()
            self._state = (observations, np.asarray(labels, dtype=bool))
            self._write_snapshot(session)
        session.attach_checkpointer(self)

    def resume_from(
        self,
        *,
        seq: int,
        generation: int,
        mutation_steps: int,
        snapshot_index: int,
        observations: ObservationMatrix,
        labels: np.ndarray,
    ) -> None:
        """Prime counters and state after recovery (RecoveryManager only)."""
        with self._lock:
            self._ensure_wal()
            self._seq = int(seq)
            self._generation = int(generation)
            self._mutation_steps = int(mutation_steps)
            self._snapshot_index = int(snapshot_index)
            self._state = (observations, np.asarray(labels, dtype=bool))
            self._refits_since_snapshot = 0

    def close(self) -> None:
        with self._lock:
            if self._wal is not None:
                self._wal.close()
                self._wal = None

    # guarded-by: _lock
    def _ensure_wal(self) -> WriteAheadLog:
        if self._wal is None:
            self._wal = WriteAheadLog(
                self._dir / WAL_FILENAME, fsync=self._fsync
            )
        return self._wal

    # -- event logging ---------------------------------------------------

    def log_mutation(
        self,
        observations: ObservationMatrix,
        labels: Optional[np.ndarray] = None,
        step: int = -1,
    ) -> None:
        """Durably log an observation change *before* it is applied."""
        with self._lock:
            self._log_mutation_locked(observations, labels, step)

    # guarded-by: _lock
    def _log_mutation_locked(
        self,
        observations: ObservationMatrix,
        labels: Optional[np.ndarray],
        step: int,
    ) -> None:
        if self._state is None:
            raise ValueError("Checkpointer.begin was never called")
        prev_matrix, prev_labels = self._state
        new_labels = (
            prev_labels if labels is None else np.asarray(labels, dtype=bool)
        )
        if step >= 0 and step < self._mutation_steps:
            # The crash child re-announces its current step on resume;
            # the WAL already covers it.
            return
        record = wal_records.mutation_record(
            prev_matrix,
            observations,
            new_labels,
            seq=self._seq + 1,
            step=step,
        )
        if record is None:
            return
        if self._append(record[0], record[1]):
            self._counters["mutations"] += 1
            self._state = (observations, new_labels)
            if step >= 0:
                self._mutation_steps = max(self._mutation_steps, step + 1)

    def prepare_refit(
        self,
        observations: ObservationMatrix,
        labels: np.ndarray,
        mode: str,
        train_mask: Optional[np.ndarray] = None,
    ) -> None:
        """Session hook: make the refit input durable before the build."""
        if train_mask is not None:
            raise ValueError(
                "checkpointed sessions must refit on the full matrix; a "
                "train_mask cannot be reconstructed from the WAL"
            )
        with self._lock:
            self._log_mutation_locked(observations, labels, -1)
            self._append(
                *wal_records.refit_begin_record(seq=self._seq + 1, mode=mode)
            )

    def commit_refit(
        self,
        session: Any,
        observations: ObservationMatrix,
        labels: np.ndarray,
    ) -> None:
        """Session hook: the new generation published; log it, maybe snap."""
        with self._lock:
            self._generation += 1
            if self._append(
                *wal_records.refit_publish_record(
                    seq=self._seq + 1, generation=self._generation
                )
            ):
                self._counters["refits"] += 1
            self._refits_since_snapshot += 1
            if self._refits_since_snapshot >= self._snapshot_every:
                self._write_snapshot(session)

    def snapshot(self, session: Any) -> Optional[Path]:
        """Force a snapshot of the current durable state."""
        with self._lock:
            return self._write_snapshot(session)

    # -- internals -------------------------------------------------------

    # guarded-by: _lock
    def _append(
        self, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> bool:
        """One WAL append with a single retry; degrades instead of raising."""
        if self._degraded:
            self._counters["skipped_degraded"] += 1
            return False
        wal = self._ensure_wal()
        meta = dict(meta)
        meta["seq"] = self._seq + 1
        try:
            wal.append(meta, arrays)
        except (InjectedFault, OSError):
            # fault-barrier: the append already repaired the WAL tail, so
            # one retry is safe; a second failure means the medium is
            # persistently refusing writes and serving must not die for
            # it -- flip to degraded and keep counters honest.
            self._counters["torn_repairs"] += 1
            try:
                wal.append(meta, arrays)
            except (InjectedFault, OSError):
                # fault-barrier: see above -- availability over
                # durability, visible via stats()["degraded"].
                self._degraded = True
                self._counters["skipped_degraded"] += 1
                return False
        self._seq += 1
        self._counters["records"] += 1
        return True

    # guarded-by: _lock
    def _write_snapshot(self, session: Any) -> Optional[Path]:
        if self._state is None:
            raise ValueError("Checkpointer.begin was never called")
        observations, labels = self._state
        state = SnapshotState(
            observations=observations,
            labels=labels,
            config=session.persist_config(),
            generation=self._generation,
            wal_seq=self._seq,
            mutation_steps=self._mutation_steps,
            statistics=session.persist_statistics(),
        )
        self._snapshot_index += 1
        try:
            path = write_snapshot(
                self._dir, state, self._snapshot_index, fsync=self._fsync
            )
        except (InjectedFault, OSError):
            # fault-barrier: a failed snapshot just means a longer WAL
            # replay from the previous one; serving continues.
            self._counters["snapshot_failures"] += 1
            return None
        self._counters["snapshots"] += 1
        self._refits_since_snapshot = 0
        prune_snapshots(self._dir, self._keep_snapshots)
        return path

    # -- observability ---------------------------------------------------

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def stats(self) -> Dict[str, Any]:
        """Counters snapshot (records, snapshots, degradation, sizes)."""
        with self._lock:
            wal_bytes = self._wal.offset if self._wal is not None else 0
            return {
                "directory": str(self._dir),
                "seq": self._seq,
                "generation": self._generation,
                "mutation_steps": self._mutation_steps,
                "wal_bytes": wal_bytes,
                "snapshots_on_disk": len(iter_snapshot_paths(self._dir)),
                "degraded": self._degraded,
                **dict(self._counters),
            }

    def __getstate__(self) -> None:
        raise TypeError(
            "Checkpointer is process-local (lock + open WAL handle) and "
            "cannot be pickled; recover from the checkpoint directory "
            "instead"
        )
