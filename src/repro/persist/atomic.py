"""Durable file primitives: fsync'd atomic replace, fault-aware writes.

Every byte the persistence layer puts on disk goes through this module
-- enforced by reprolint REP007, which forbids bare ``open(..., "w")``
anywhere else under ``repro/persist``.  Centralising the writes buys
three things:

- **Atomicity.**  :func:`atomic_write` stages into a same-directory temp
  file, fsyncs it, ``os.replace``\\ s it over the target, then fsyncs the
  directory.  A crash at any instant leaves either the old file, the new
  file, or an ignorable ``*.tmp-*`` orphan -- never a half-written
  target.
- **Deterministic fault injection.**  :func:`durable_write` consults the
  ``persist`` fault site before touching the file.  The persist-only
  ``torn-write`` action writes a seeded prefix of the payload, makes it
  durable, and then fails -- the exact on-disk shape of a power cut
  mid-write, produced on demand for the torn-tail recovery tests.
- **Real crash points.**  :func:`crash_hook` consults
  ``$REPRO_CRASH_POINT`` (``"<name>:<nth>"``) and SIGKILLs the *current*
  process on the matching hit.  Unlike the in-process fault plan (whose
  ``kill`` deliberately degrades to ``raise`` in the minting process),
  this is an actual uncatchable death, used by ``run_serving_crash`` to
  kill a child serving process mid-WAL-append or mid-snapshot.
"""

from __future__ import annotations

import os
import signal
from pathlib import Path
from typing import IO, Optional, Tuple

from repro.core import faults

#: Environment variable arming a real SIGKILL crash point in this
#: process: ``"<name>:<nth>"`` dies on the nth hit of that named point.
CRASH_ENV_VAR = "REPRO_CRASH_POINT"

#: Crash point fired after a WAL frame is durably appended.
CRASH_POINT_WAL = "wal"
#: Crash point fired after a snapshot temp file is durable but *before*
#: it is renamed into place (the mid-snapshot crash shape).
CRASH_POINT_SNAPSHOT = "snapshot"

_crash_spec: Optional[Tuple[str, int]] = None
_crash_spec_loaded = False
_crash_hits: "dict[str, int]" = {}


def _active_crash_spec() -> Optional[Tuple[str, int]]:
    global _crash_spec, _crash_spec_loaded
    if not _crash_spec_loaded:
        raw = os.environ.get(CRASH_ENV_VAR, "").strip()
        if raw:
            name, _, nth_text = raw.partition(":")
            _crash_spec = (name.strip(), int(nth_text) if nth_text else 1)
        _crash_spec_loaded = True
    return _crash_spec


def reset_crash_points() -> None:
    """Re-read ``$REPRO_CRASH_POINT`` and zero the hit counters (tests)."""
    global _crash_spec, _crash_spec_loaded
    _crash_spec = None
    _crash_spec_loaded = False
    _crash_hits.clear()


def crash_hook(name: str) -> None:
    """SIGKILL this process if the armed crash point matches this hit.

    Disarmed cost is one cached-spec check.  SIGKILL (not ``os._exit``)
    so the death is indistinguishable from ``kill -9``: no atexit, no
    buffered flushes, no interpreter teardown.
    """
    spec = _active_crash_spec()
    if spec is None:
        return
    hits = _crash_hits.get(name, 0) + 1
    _crash_hits[name] = hits
    if name == spec[0] and hits == spec[1]:
        os.kill(os.getpid(), signal.SIGKILL)


def durable_write(handle: "IO[bytes]", data: bytes, fsync: bool = True) -> None:
    """Write ``data`` and make it durable, honouring persist faults.

    A fired ``torn-write`` rule writes only the rule's fraction of the
    payload, flushes and fsyncs that prefix (a torn write that never
    reached the platters needs no recovery story -- durable garbage is
    the hard case), then raises :class:`~repro.core.faults.InjectedFault`.
    Other persist actions are forwarded to :func:`faults.perform`.
    """
    token = faults.trip_token(faults.SITE_PERSIST)
    if token is not None:
        action, fraction, _parent_pid, site, hit = token
        if action == faults.ACTION_TORN_WRITE:
            torn_length = min(len(data), max(0, int(len(data) * fraction)))
            handle.write(data[:torn_length])
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
            raise faults.InjectedFault(site, hit)
        faults.perform(token)
    handle.write(data)
    handle.flush()
    if fsync:
        os.fsync(handle.fileno())


def _fsync_directory(directory: Path) -> None:
    fd = os.open(str(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(
    path: Path,
    data: bytes,
    *,
    fsync: bool = True,
    crash_point: Optional[str] = None,
) -> None:
    """Durably replace ``path`` with ``data`` (temp + fsync + rename).

    ``crash_point`` names an optional :func:`crash_hook` site fired after
    the temp file is durable but before the rename -- the window where a
    crash leaves a complete orphan next to an untouched (or absent)
    target.
    """
    path = Path(path)
    tmp_path = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    renamed = False
    try:
        with open(tmp_path, "wb") as handle:
            durable_write(handle, data, fsync=fsync)
        if crash_point is not None:
            crash_hook(crash_point)
        os.replace(tmp_path, path)
        renamed = True
        if fsync:
            _fsync_directory(path.parent)
    finally:
        if not renamed:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass


def open_for_append(path: Path) -> "IO[bytes]":
    """Open the WAL file for appending (the one non-atomic write path)."""
    return open(path, "ab")


def truncate_file(path: Path, size: int, fsync: bool = True) -> None:
    """Durably truncate ``path`` to ``size`` bytes (torn-tail repair)."""
    with open(path, "r+b") as handle:
        handle.truncate(size)
        if fsync:
            os.fsync(handle.fileno())
