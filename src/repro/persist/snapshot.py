"""Atomic, versioned generation snapshots with corruption fallback.

A snapshot is one checksummed frame (:mod:`repro.persist.format`) holding
everything needed to rebuild a generation *exactly*:

- the packed observation matrices (``provides``/``coverage`` uint64
  words + bit counts) and packed truth labels -- the integer inputs;
- the session config (method, prior, smoothing, engine, fuser options)
  -- the pure-function parameters;
- the generation number, the WAL sequence the snapshot is consistent
  with, and the trace-step watermark;
- the model's integer sufficient statistics, stored not to *restore*
  state but to *verify* it: recovery rebuilds the model cold from the
  matrices (bit-identical by the delta-refit contract) and cross-checks
  the rebuilt integers against the stored ones.

Files are written via :func:`repro.persist.atomic.atomic_write` (temp +
fsync + rename) and named ``snap-<index>-<walseq>.rsnp``; readers walk
them newest-first and fall back to an older snapshot (plus a longer WAL
replay) when the newest fails validation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.observations import ObservationMatrix
from repro.persist.atomic import CRASH_POINT_SNAPSHOT, atomic_write
from repro.persist.format import (
    PersistFormatError,
    decode_payload,
    encode_frame,
    encode_payload,
    pack_bool_matrix,
    read_frame,
    unpack_bool_matrix,
)

#: Snapshot file suffix.
SNAPSHOT_SUFFIX = ".rsnp"

_SNAPSHOT_NAME = re.compile(r"^snap-(\d{6})-(\d{12})\.rsnp$")


@dataclass(frozen=True)
class SnapshotState:
    """The durable image of one published generation."""

    observations: ObservationMatrix
    labels: np.ndarray
    config: Dict[str, Any]
    generation: int
    wal_seq: int
    mutation_steps: int
    statistics: Optional[Dict[str, np.ndarray]] = None


def snapshot_path(directory: Path, index: int, wal_seq: int) -> Path:
    """Canonical file name for snapshot ``index`` at WAL seq ``wal_seq``."""
    return Path(directory) / f"snap-{index:06d}-{wal_seq:012d}{SNAPSHOT_SUFFIX}"


def parse_snapshot_name(path: Path) -> Optional[Tuple[int, int]]:
    """``(index, wal_seq)`` from a snapshot file name, or ``None``."""
    match = _SNAPSHOT_NAME.match(Path(path).name)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2))


def iter_snapshot_paths(directory: Path) -> List[Path]:
    """Snapshot files in ``directory``, newest (highest index) first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = [
        path
        for path in directory.iterdir()
        if _SNAPSHOT_NAME.match(path.name)
    ]
    return sorted(found, key=lambda path: path.name, reverse=True)


def encode_snapshot(state: SnapshotState) -> bytes:
    """Serialize a :class:`SnapshotState` into one checksummed frame."""
    provides_words, n_triples = pack_bool_matrix(state.observations.provides)
    coverage_words, _ = pack_bool_matrix(state.observations.coverage)
    labels = np.asarray(state.labels, dtype=bool)
    if labels.shape != (n_triples,):
        raise ValueError(f"labels shape {labels.shape} != ({n_triples},)")
    labels_words, labels_bits = pack_bool_matrix(labels[np.newaxis, :])
    meta = {
        "kind": "snapshot",
        "generation": int(state.generation),
        "wal_seq": int(state.wal_seq),
        "mutation_steps": int(state.mutation_steps),
        "n_sources": int(state.observations.n_sources),
        "n_triples": int(n_triples),
        "labels_bits": int(labels_bits),
        "source_names": list(state.observations.source_names),
        "config": dict(state.config),
        "statistics": sorted(state.statistics) if state.statistics else [],
    }
    arrays = {
        "provides_words": provides_words,
        "coverage_words": coverage_words,
        "labels_words": labels_words[0],
    }
    if state.statistics:
        for name, values in state.statistics.items():
            arrays[f"stat_{name}"] = np.asarray(values, dtype=np.int64)
    return encode_frame(encode_payload(meta, arrays))


def decode_snapshot(data: bytes) -> SnapshotState:
    """Inverse of :func:`encode_snapshot`; raises on any defect."""
    payload, end = read_frame(data, 0)
    if end != len(data):
        raise PersistFormatError("trailing bytes after snapshot frame")
    meta, arrays = decode_payload(payload)
    if meta.get("kind") != "snapshot":
        raise PersistFormatError(f"not a snapshot payload: {meta.get('kind')!r}")
    n_triples = int(meta["n_triples"])
    provides = unpack_bool_matrix(arrays["provides_words"], n_triples)
    coverage = unpack_bool_matrix(arrays["coverage_words"], n_triples)
    labels = unpack_bool_matrix(arrays["labels_words"], int(meta["labels_bits"]))
    observations = ObservationMatrix(
        provides,
        [str(name) for name in meta["source_names"]],
        coverage=coverage,
    )
    statistics: Optional[Dict[str, np.ndarray]] = None
    if meta["statistics"]:
        statistics = {
            str(name): np.asarray(arrays[f"stat_{name}"], dtype=np.int64)
            for name in meta["statistics"]
        }
    return SnapshotState(
        observations=observations,
        labels=labels,
        config=dict(meta["config"]),
        generation=int(meta["generation"]),
        wal_seq=int(meta["wal_seq"]),
        mutation_steps=int(meta["mutation_steps"]),
        statistics=statistics,
    )


def write_snapshot(
    directory: Path, state: SnapshotState, index: int, *, fsync: bool = True
) -> Path:
    """Atomically write snapshot ``index`` into ``directory``."""
    path = snapshot_path(directory, index, state.wal_seq)
    atomic_write(
        path,
        encode_snapshot(state),
        fsync=fsync,
        crash_point=CRASH_POINT_SNAPSHOT,
    )
    return path


def load_snapshot(path: Path) -> SnapshotState:
    """Read and validate one snapshot file."""
    return decode_snapshot(Path(path).read_bytes())


def prune_snapshots(directory: Path, keep: int) -> int:
    """Delete all but the newest ``keep`` snapshots; returns the count.

    ``keep`` is floored at 2 so a corrupted newest snapshot always has a
    fallback -- the whole point of keeping history.
    """
    keep = max(2, int(keep))
    paths = iter_snapshot_paths(directory)
    removed = 0
    for path in paths[keep:]:
        try:
            path.unlink()
            removed += 1
        except OSError:
            # fault-barrier: a snapshot we failed to delete is still a
            # valid (just stale) fallback; pruning must never take the
            # serving loop down.
            continue
    return removed
