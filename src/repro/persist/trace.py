"""Recorded mutation traces: the WAL record format as a public artifact.

A recorded trace is simply a WAL file containing tagged ``mutation``
records -- the same frames, checksums, and dirty-column blocks the
durability layer writes.  That identity is the point (the ROADMAP's
"trace format + replayer" item): a trace recorded by
:func:`record_mutation_trace`, a WAL left behind by a checkpointed
serving run, and a file hand-built from ``wal`` primitives are all
replayable by the same :func:`replay_mutation_trace`, so streaming
benches can re-drive *recorded* workloads instead of synthetic
``mutate_frac`` draws -- and a production WAL doubles as a
reproducible bug report.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.observations import ObservationMatrix
from repro.persist.wal import (
    RECORD_MUTATION,
    WriteAheadLog,
    apply_mutation,
    mutation_record,
    scan_wal,
)


def record_mutation_trace(
    path: Path,
    base: ObservationMatrix,
    matrices: Sequence[ObservationMatrix],
    labels: np.ndarray,
    *,
    fsync: bool = False,
) -> int:
    """Write a cumulative mutation trace as tagged WAL records.

    ``matrices`` are the successive post-mutation states (e.g. the
    output of :func:`repro.eval.harness.mutation_trace`); each is logged
    as a dirty-column diff against its predecessor, tagged with its step
    index.  Returns the number of records written (states identical to
    their predecessor still get a record -- the step tags stay dense).
    ``fsync`` defaults off: a trace artifact needs integrity (checksums),
    not crash durability.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        raise FileExistsError(f"trace file already exists: {path}")
    labels = np.asarray(labels, dtype=bool)
    wal = WriteAheadLog(path, fsync=fsync)
    try:
        previous = base
        written = 0
        for step, current in enumerate(matrices):
            record = mutation_record(
                previous, current, labels, seq=step + 1, step=step
            )
            assert record is not None  # step tag forces a record
            wal.append(record[0], record[1])
            previous = current
            written += 1
        return written
    finally:
        wal.close()


def replay_mutation_trace(
    path: Path,
    base: ObservationMatrix,
    *,
    limit: Optional[int] = None,
) -> Tuple[List[ObservationMatrix], np.ndarray]:
    """Rebuild the post-mutation states recorded in a trace (or WAL) file.

    Non-mutation records (refit begin/publish markers in a serving WAL)
    are skipped, so any checkpoint directory's ``wal.log`` replays
    directly.  Returns ``(matrices, last_labels)``; ``limit`` caps the
    number of mutation records applied.
    """
    scan = scan_wal(Path(path))
    matrices: List[ObservationMatrix] = []
    labels: Optional[np.ndarray] = None
    current = base
    for meta, arrays in scan.records:
        if meta.get("type") != RECORD_MUTATION:
            continue
        current, labels = apply_mutation(current, meta, arrays)
        matrices.append(current)
        if limit is not None and len(matrices) >= limit:
            break
    if labels is None:
        raise ValueError(f"no mutation records in trace file {path}")
    return matrices, labels
