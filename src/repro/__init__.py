"""repro -- reproduction of "Fusing Data with Correlations" (SIGMOD 2014).

Correlation-aware truth discovery: given triples asserted by multiple noisy
sources, compute the probability that each triple is true, accounting for
positive and negative correlations between sources.

Quickstart::

    from repro import figure1_dataset, fuse

    dataset = figure1_dataset()
    result = fuse(dataset.observations, dataset.labels, method="precreccorr")
    print(result.scores)          # Pr(t | Ot) per triple
    print(result.accepted)        # triples accepted as true

See :mod:`repro.core` for the algorithms, :mod:`repro.baselines` for the
comparison methods, :mod:`repro.data` for datasets and generators, and
:mod:`repro.eval` for metrics and the experiment harness.
"""

from repro.core import (
    AggressiveFuser,
    ClusteredCorrelationFuser,
    ElasticFuser,
    EmpiricalJointModel,
    ExactCorrelationFuser,
    ExpectationMaximizationFuser,
    ExplicitJointModel,
    FusionResult,
    IndependentJointModel,
    JointQualityModel,
    MicroBatcher,
    ObservationMatrix,
    PrecRecFuser,
    ScoringSession,
    ShardedExecutor,
    ShardPlanner,
    SourceQuality,
    Triple,
    TripleIndex,
    TruthFuser,
    WorkerPool,
    correlation_clusters,
    derive_false_positive_rate,
    discovered_correlation_groups,
    estimate_prior,
    estimate_source_quality,
    fit_model,
    fuse,
    make_fuser,
    pairwise_correlations,
    pairwise_phi,
)
from repro.data import FusionDataset, figure1_dataset

__version__ = "1.0.0"

__all__ = [
    "AggressiveFuser",
    "ClusteredCorrelationFuser",
    "ElasticFuser",
    "EmpiricalJointModel",
    "ExactCorrelationFuser",
    "ExpectationMaximizationFuser",
    "ExplicitJointModel",
    "FusionDataset",
    "FusionResult",
    "IndependentJointModel",
    "JointQualityModel",
    "MicroBatcher",
    "ObservationMatrix",
    "PrecRecFuser",
    "ScoringSession",
    "ShardPlanner",
    "ShardedExecutor",
    "SourceQuality",
    "Triple",
    "TripleIndex",
    "TruthFuser",
    "WorkerPool",
    "__version__",
    "correlation_clusters",
    "derive_false_positive_rate",
    "discovered_correlation_groups",
    "estimate_prior",
    "estimate_source_quality",
    "figure1_dataset",
    "fit_model",
    "fuse",
    "make_fuser",
    "pairwise_correlations",
    "pairwise_phi",
]
