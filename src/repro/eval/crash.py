"""Crash-exactness harness: SIGKILL a serving child, recover, compare bits.

This module is both the parent-side verifier (:func:`run_serving_crash`)
and the child it verifies (``python -m repro.eval.crash --spec s.json``).

The child drives a deterministic serving loop over a seeded mutation
trace with a :class:`~repro.persist.Checkpointer` attached: every step
logs its mutation to the WAL, scores the step's matrix, durably records
the scores, and refits at every ``refit_every`` boundary.  Real crash
points (:mod:`repro.persist.atomic`) let the parent SIGKILL it at exact
durability positions -- the N-th WAL append (which may be a mutation, a
``refit_begin``, or a ``refit_publish``, so "mid-refit" is just a WAL
position) or the N-th snapshot temp file (mid-snapshot: durable temp,
no rename).  On restart the child recovers via
:class:`~repro.persist.RecoveryManager`, resumes from its durable scores
watermark, performs any refits the dead process owed, and continues.

The parent first computes the *uninterrupted twin* -- the same loop, in
process, no checkpointer, no kills -- then launches the child under each
kill spec in ``kill_schedule`` (asserting the SIGKILL actually landed),
finishes with one clean launch, and hard-asserts every recovered
per-step score vector is **bit-identical** to the twin's:
``max |recovered - twin|`` must be exactly ``0.0``, and every step must
have been served by the same generation.  That is the durability claim
in executable form: a crash at *any* seeded point loses nothing and
changes nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.api import ScoringSession, check_refit_mode
from repro.core.observations import ObservationMatrix
from repro.data.model import FusionDataset
from repro.data.synthetic import SyntheticConfig, generate, uniform_sources
from repro.eval.harness import mutation_trace
from repro.persist import Checkpointer, RecoveryManager
from repro.persist.atomic import CRASH_ENV_VAR, atomic_write
from repro.persist.format import (
    decode_payload,
    encode_frame,
    encode_payload,
    read_frame,
)

#: Per-step durable scores file (one checksummed frame each).
SCORES_SUFFIX = ".rec"


@dataclass(frozen=True)
class CrashRecoveryReport:
    """What one :func:`run_serving_crash` campaign proved."""

    steps: int
    refit_every: int
    refit_mode: str
    method: str
    kill_schedule: Tuple[str, ...]
    #: One entry per scheduled kill that was delivered (all must be).
    kills_delivered: int
    #: Child launches that began from recovered durable state.
    recoveries: int
    #: Largest |recovered - twin| over every step's scores -- the
    #: acceptance gate pins this to exactly 0.0.
    max_abs_diff: float
    #: Steps whose recovered generation differed from the twin's (must
    #: be 0).
    generation_mismatches: int
    #: Refits the dead process owed that restarts performed.
    catchup_refits: int
    #: Snapshots skipped as corrupt across all recoveries.
    snapshots_skipped: int
    #: Mid-refit deaths rolled back to the last published generation.
    rolled_back_refits: int
    wal_records_replayed: int
    recovery_reports: Tuple[Mapping[str, Any], ...] = ()
    final_checkpoint_stats: Mapping[str, Any] = field(default_factory=dict)


def crash_dataset(
    seed: int = 17,
    n_sources: int = 8,
    n_triples: int = 400,
    precision: float = 0.65,
    recall: float = 0.45,
    true_fraction: float = 0.5,
) -> FusionDataset:
    """The deterministic dataset both parent and child rebuild from seed."""
    config = SyntheticConfig(
        sources=uniform_sources(n_sources, precision=precision, recall=recall),
        n_triples=n_triples,
        true_fraction=true_fraction,
    )
    return generate(config, seed=seed)


def _scores_path(scores_dir: Path, step: int) -> Path:
    return scores_dir / f"scores-{step:06d}{SCORES_SUFFIX}"


def _write_step_scores(
    scores_dir: Path, step: int, generation: int, scores: np.ndarray
) -> None:
    """Durably record one step's served scores (atomic checksummed frame).

    Written *after* the step's WAL mutation record and *before* any
    boundary refit, so the set of scores files on disk is always a dense
    prefix -- which is exactly what makes it a resume watermark.
    """
    payload = encode_payload(
        {"kind": "step_scores", "step": int(step), "generation": int(generation)},
        {"scores": np.asarray(scores, dtype=np.float64)},
    )
    atomic_write(_scores_path(scores_dir, step), encode_frame(payload))


def _read_step_scores(scores_dir: Path, step: int) -> Tuple[int, np.ndarray]:
    """``(generation, scores)`` for one recorded step."""
    data = _scores_path(scores_dir, step).read_bytes()
    payload, _ = read_frame(data, 0)
    meta, arrays = decode_payload(payload)
    if meta.get("kind") != "step_scores" or int(meta["step"]) != step:
        raise ValueError(f"step scores file for step {step} is mislabelled")
    return int(meta["generation"]), arrays["scores"]


def _resume_step(scores_dir: Path, steps: int) -> int:
    """First step without a durable scores file (the resume watermark)."""
    step = 0
    while step < steps and _scores_path(scores_dir, step).exists():
        step += 1
    return step


def _refit(
    session: ScoringSession,
    matrix: ObservationMatrix,
    labels: np.ndarray,
    mode: str,
) -> None:
    if mode == "cold":
        session.refit(matrix, labels)
    else:
        session.refit_delta(matrix, labels)


# ----------------------------------------------------------------------
# Child: the serving loop that gets killed
# ----------------------------------------------------------------------


def run_crash_child(spec: Dict[str, Any]) -> Dict[str, Any]:
    """One child lifetime: fresh-start or recover, then serve until done.

    Returns a JSON-able report (also written to ``reports/`` inside the
    work directory, since the process usually dies before returning).
    """
    steps = int(spec["steps"])
    refit_every = int(spec["refit_every"])
    refit_mode = check_refit_mode(str(spec.get("refit_mode", "delta")))
    method = str(spec.get("method", "precreccorr"))
    checkpoint_dir = Path(spec["checkpoint_dir"])
    scores_dir = Path(spec["scores_dir"])
    scores_dir.mkdir(parents=True, exist_ok=True)
    if refit_every < 1:
        raise ValueError(f"refit_every must be >= 1, got {refit_every}")

    dataset = crash_dataset(
        seed=int(spec.get("seed", 17)),
        n_sources=int(spec.get("n_sources", 8)),
        n_triples=int(spec.get("n_triples", 400)),
        precision=float(spec.get("precision", 0.65)),
        recall=float(spec.get("recall", 0.45)),
        true_fraction=float(spec.get("true_fraction", 0.5)),
    )
    trace = mutation_trace(
        dataset.observations,
        steps,
        float(spec.get("mutate_frac", 0.05)),
        seed=int(spec.get("trace_seed", 1)),
    )
    labels = dataset.labels
    policy = {
        "snapshot_every": int(spec.get("snapshot_every", 2)),
        "keep_snapshots": int(spec.get("keep_snapshots", 3)),
    }

    resume = _resume_step(scores_dir, steps)
    recovered_report: Optional[Dict[str, Any]] = None
    catchup = 0
    if RecoveryManager.has_state(checkpoint_dir):
        manager = RecoveryManager(checkpoint_dir)
        recovered = manager.recover()
        checkpointer = manager.resume(recovered, **policy)
        session = recovered.session
        generation = recovered.generation
        recovered_report = recovered.report()
        owed = resume // refit_every - generation
        # Boot report, written *before* any more durable work: this
        # lifetime may itself be killed (even inside the catch-up
        # refits below), and the parent still needs to see what its
        # recovery found.
        reports_dir = scores_dir.parent / "reports"
        reports_dir.mkdir(parents=True, exist_ok=True)
        atomic_write(
            reports_dir / f"boot-{os.getpid()}.json",
            json.dumps(
                {
                    "resumed_from_step": resume,
                    "catchup_refits": owed,
                    "recovery": recovered_report,
                },
                indent=2,
            ).encode("utf-8"),
        )
        # Refits the dead process owed: a crash after step scores landed
        # but before (or during) the boundary refit leaves the published
        # generation behind the resume watermark.  Re-run each owed
        # boundary on its exact original input; the checkpointer hooks
        # make the catch-up durable too.
        while generation < resume // refit_every:
            boundary = (generation + 1) * refit_every - 1
            _refit(session, trace[boundary], labels, refit_mode)
            generation += 1
            catchup += 1
    else:
        session = ScoringSession(
            dataset.observations, labels, method=method
        )
        checkpointer = Checkpointer.attach(
            session, dataset.observations, labels, checkpoint_dir, **policy
        )
        generation = 0

    for step in range(resume, steps):
        matrix = trace[step]
        # Durability order is the whole point: WAL first (append before
        # apply), then serve, then the durable scores watermark, then
        # any boundary refit.  A SIGKILL between any two of these must
        # recover to this exact sequence.
        checkpointer.log_mutation(matrix, step=step)
        scores = session.score(matrix)
        _write_step_scores(scores_dir, step, generation, scores)
        if (step + 1) % refit_every == 0:
            _refit(session, matrix, labels, refit_mode)
            generation += 1

    report = {
        "resumed_from_step": resume,
        "completed_steps": steps,
        "catchup_refits": catchup,
        "recovery": recovered_report,
        "checkpoint_stats": checkpointer.stats,
    }
    reports_dir = scores_dir.parent / "reports"
    reports_dir.mkdir(parents=True, exist_ok=True)
    atomic_write(
        reports_dir / f"child-{os.getpid()}.json",
        json.dumps(report, indent=2).encode("utf-8"),
    )
    checkpointer.close()
    session.close()
    return report


def _load_reports(workdir: Path, pattern: str) -> List[Dict[str, Any]]:
    reports_dir = workdir / "reports"
    if not reports_dir.is_dir():
        return []
    loaded: List[Dict[str, Any]] = []
    for path in sorted(reports_dir.glob(pattern)):
        loaded.append(json.loads(path.read_text()))
    return loaded


# ----------------------------------------------------------------------
# Parent: twin, kill campaign, bit-identity gate
# ----------------------------------------------------------------------


def _twin_scores(
    dataset: FusionDataset,
    trace: Sequence[ObservationMatrix],
    refit_every: int,
    refit_mode: str,
    method: str,
) -> List[Tuple[int, np.ndarray]]:
    """The uninterrupted in-process run the recovered child must match."""
    session = ScoringSession(dataset.observations, dataset.labels, method=method)
    try:
        generation = 0
        expected: List[Tuple[int, np.ndarray]] = []
        for step, matrix in enumerate(trace):
            expected.append((generation, session.score(matrix)))
            if (step + 1) % refit_every == 0:
                _refit(session, matrix, dataset.labels, refit_mode)
                generation += 1
        return expected
    finally:
        session.close()


def _launch_child(
    spec_path: Path, crash_spec: Optional[str], timeout: float
) -> "subprocess.CompletedProcess[bytes]":
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root if not existing else f"{src_root}{os.pathsep}{existing}"
    )
    if crash_spec is None:
        env.pop(CRASH_ENV_VAR, None)
    else:
        env[CRASH_ENV_VAR] = crash_spec
    return subprocess.run(
        [sys.executable, "-m", "repro.eval.crash", "--spec", str(spec_path)],
        env=env,
        capture_output=True,
        timeout=timeout,
    )


def run_serving_crash(
    workdir: Path,
    steps: int = 12,
    refit_every: int = 3,
    refit_mode: str = "delta",
    method: str = "precreccorr",
    mutate_frac: float = 0.05,
    seed: int = 17,
    trace_seed: int = 1,
    n_sources: int = 8,
    n_triples: int = 400,
    snapshot_every: int = 2,
    kill_schedule: Sequence[str] = ("snapshot:2", "wal:4", "wal:3"),
    child_timeout: float = 300.0,
) -> CrashRecoveryReport:
    """SIGKILL a checkpointed serving child per schedule; demand exactness.

    Each ``kill_schedule`` entry is a crash-point spec (``"wal:4"`` =
    die the instant the 4th WAL append of that lifetime is durable;
    ``"snapshot:2"`` = die with the 2nd snapshot temp file durable but
    not renamed).  Entries run in order, each against the durable state
    its predecessors left behind -- so put snapshot kills early, while
    the child still has enough trace ahead of it to reach that many
    snapshot writes; a spec that never fires fails the run rather than
    silently passing.  A final clean launch finishes the trace.  Raises
    ``RuntimeError`` unless every scheduled kill was
    delivered (``returncode == -SIGKILL``), the clean run exits 0, and
    every recovered step is bit-identical to the uninterrupted twin --
    same generation, ``max |diff|`` exactly ``0.0``.
    """
    refit_mode = check_refit_mode(refit_mode)
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if refit_every < 1:
        raise ValueError(f"refit_every must be >= 1, got {refit_every}")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    spec = {
        "steps": steps,
        "refit_every": refit_every,
        "refit_mode": refit_mode,
        "method": method,
        "mutate_frac": mutate_frac,
        "seed": seed,
        "trace_seed": trace_seed,
        "n_sources": n_sources,
        "n_triples": n_triples,
        "snapshot_every": snapshot_every,
        "checkpoint_dir": str(workdir / "checkpoint"),
        "scores_dir": str(workdir / "scores"),
    }
    spec_path = workdir / "spec.json"
    spec_path.write_text(json.dumps(spec, indent=2))

    dataset = crash_dataset(
        seed=seed, n_sources=n_sources, n_triples=n_triples
    )
    trace = mutation_trace(
        dataset.observations, steps, mutate_frac, seed=trace_seed
    )
    expected = _twin_scores(dataset, trace, refit_every, refit_mode, method)

    kills = 0
    for crash_spec in kill_schedule:
        proc = _launch_child(spec_path, crash_spec, child_timeout)
        if proc.returncode != -9:
            raise RuntimeError(
                f"kill spec {crash_spec!r} did not SIGKILL the child "
                f"(returncode {proc.returncode}); the schedule must hit a "
                "live crash point\n"
                f"stderr: {proc.stderr.decode('utf-8', 'replace')[-2000:]}"
            )
        kills += 1
    proc = _launch_child(spec_path, None, child_timeout)
    if proc.returncode != 0:
        raise RuntimeError(
            "final clean child run failed with returncode "
            f"{proc.returncode}\n"
            f"stderr: {proc.stderr.decode('utf-8', 'replace')[-2000:]}"
        )

    scores_dir = workdir / "scores"
    max_abs_diff = 0.0
    generation_mismatches = 0
    for step in range(steps):
        generation, scores = _read_step_scores(scores_dir, step)
        twin_generation, twin = expected[step]
        if generation != twin_generation:
            generation_mismatches += 1
        diff = float(np.abs(scores - twin).max()) if len(twin) else 0.0
        max_abs_diff = max(max_abs_diff, diff)

    boots = _load_reports(workdir, "boot-*.json")
    completions = _load_reports(workdir, "child-*.json")
    recoveries = sum(
        1 for report in boots if report.get("recovery") is not None
    )
    catchup = sum(int(report.get("catchup_refits", 0)) for report in boots)
    skipped = sum(
        len(report["recovery"].get("snapshots_skipped", []))
        for report in boots
        if report.get("recovery")
    )
    rolled_back = sum(
        int(report["recovery"].get("rolled_back_refits", 0))
        for report in boots
        if report.get("recovery")
    )
    replayed = sum(
        int(report["recovery"].get("records_replayed", 0))
        for report in boots
        if report.get("recovery")
    )
    final_stats: Mapping[str, Any] = (
        completions[-1].get("checkpoint_stats", {}) if completions else {}
    )
    report = CrashRecoveryReport(
        steps=steps,
        refit_every=refit_every,
        refit_mode=refit_mode,
        method=method,
        kill_schedule=tuple(kill_schedule),
        kills_delivered=kills,
        recoveries=recoveries,
        max_abs_diff=max_abs_diff,
        generation_mismatches=generation_mismatches,
        catchup_refits=catchup,
        snapshots_skipped=skipped,
        rolled_back_refits=rolled_back,
        wal_records_replayed=replayed,
        recovery_reports=tuple(
            report["recovery"] for report in boots if report.get("recovery")
        ),
        final_checkpoint_stats=final_stats,
    )
    if generation_mismatches:
        raise RuntimeError(
            f"crash-recovery generation drift: {generation_mismatches} "
            "steps were served by a different generation than the "
            "uninterrupted twin"
        )
    if max_abs_diff != 0.0:
        raise RuntimeError(
            "crash-recovery bit-identity violation: max |recovered - "
            f"twin| = {max_abs_diff!r} (must be exactly 0.0) under "
            f"schedule {tuple(kill_schedule)!r}"
        )
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Child entry point: ``python -m repro.eval.crash --spec spec.json``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--spec", required=True, help="JSON spec file written by the parent"
    )
    parsed = parser.parse_args(argv)
    spec = json.loads(Path(parsed.spec).read_text())
    report = run_crash_child(spec)
    json.dump(report, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
