"""Evaluation metrics used in the paper's Section 5.

Three families:

- **Binary metrics** -- precision / recall / F1 of the accept-reject
  decision at a fixed threshold;
- **Ranking curves** -- the PR-curve and ROC-curve obtained by sorting
  triples by decreasing truthfulness score and sweeping the cut-off, plus
  their areas (AUC-PR, AUC-ROC).  Tied scores are swept as one block so the
  curves do not depend on an arbitrary intra-tie order;
- **Probability calibration** (extension) -- Brier score and log-loss, which
  quantify the paper's observation that correlation-aware fusion improves
  the *probabilities*, not just the decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class BinaryMetrics:
    """Confusion counts and the derived precision / recall / F1."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        returned = self.true_positives + self.false_positives
        return self.true_positives / returned if returned else 0.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if p + r else 0.0

    @property
    def accuracy(self) -> float:
        total = (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )
        return (self.true_positives + self.true_negatives) / total if total else 0.0

    def as_tuple(self) -> tuple[float, float, float]:
        """``(precision, recall, f1)`` -- the columns of Figure 4's bars."""
        return (self.precision, self.recall, self.f1)


def binary_metrics(accepted: np.ndarray, labels: np.ndarray) -> BinaryMetrics:
    """Score an accept/reject decision against gold labels."""
    accepted = np.asarray(accepted, dtype=bool)
    labels = np.asarray(labels, dtype=bool)
    if accepted.shape != labels.shape:
        raise ValueError(
            f"accepted shape {accepted.shape} != labels shape {labels.shape}"
        )
    return BinaryMetrics(
        true_positives=int((accepted & labels).sum()),
        false_positives=int((accepted & ~labels).sum()),
        false_negatives=int((~accepted & labels).sum()),
        true_negatives=int((~accepted & ~labels).sum()),
    )


@dataclass(frozen=True)
class Curve:
    """A ranking curve: points ``(x[k], y[k])`` plus the area under it."""

    x: np.ndarray
    y: np.ndarray
    area: float

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=float)
        y = np.asarray(self.y, dtype=float)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError("curve coordinates must be 1-D arrays of equal length")
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)


def _ranked_blocks(
    scores: np.ndarray, labels: np.ndarray
) -> "Iterator[tuple[int, int]]":
    """Yield ``(block_true, block_false)`` counts in decreasing-score order.

    Equal scores form one block: a threshold can only fall between distinct
    score values, so tied triples enter the ranking together.
    """
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    start = 0
    n = scores.size
    while start < n:
        end = start
        while end < n and sorted_scores[end] == sorted_scores[start]:
            end += 1
        block = sorted_labels[start:end]
        yield int(block.sum()), int(block.size - block.sum())
        start = end


def pr_curve(scores: np.ndarray, labels: np.ndarray) -> Curve:
    """Precision-recall curve with AUC-PR (trapezoidal over blocks).

    The first point is pinned at recall 0 with the precision of the
    top-ranked block, the paper's convention for plotting from the top of
    the ranking.
    """
    scores, labels = _check_ranking_inputs(scores, labels)
    n_true = int(labels.sum())
    if n_true == 0:
        return Curve(x=np.array([0.0, 1.0]), y=np.array([0.0, 0.0]), area=0.0)
    recalls = [0.0]
    precisions: list[float] = []
    tp = 0
    seen = 0
    for block_true, block_false in _ranked_blocks(scores, labels):
        tp += block_true
        seen += block_true + block_false
        recalls.append(tp / n_true)
        precisions.append(tp / seen)
    precisions = [precisions[0]] + precisions  # pin precision at recall 0
    x = np.asarray(recalls)
    y = np.asarray(precisions)
    area = float(np.trapezoid(y, x))
    return Curve(x=x, y=y, area=area)


def roc_curve(scores: np.ndarray, labels: np.ndarray) -> Curve:
    """ROC curve (true-positive rate vs false-positive rate) with AUC-ROC."""
    scores, labels = _check_ranking_inputs(scores, labels)
    n_true = int(labels.sum())
    n_false = int(labels.size - n_true)
    if n_true == 0 or n_false == 0:
        return Curve(x=np.array([0.0, 1.0]), y=np.array([0.0, 1.0]), area=0.5)
    tprs = [0.0]
    fprs = [0.0]
    tp = fp = 0
    for block_true, block_false in _ranked_blocks(scores, labels):
        tp += block_true
        fp += block_false
        tprs.append(tp / n_true)
        fprs.append(fp / n_false)
    x = np.asarray(fprs)
    y = np.asarray(tprs)
    area = float(np.trapezoid(y, x))
    return Curve(x=x, y=y, area=area)


def auc_pr(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the PR curve."""
    return pr_curve(scores, labels).area


def auc_roc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve."""
    return roc_curve(scores, labels).area


def brier_score(scores: np.ndarray, labels: np.ndarray) -> float:
    """Mean squared error of the probabilities (lower is better)."""
    scores, labels = _check_ranking_inputs(scores, labels)
    return float(np.mean((scores - labels.astype(float)) ** 2))


def log_loss(scores: np.ndarray, labels: np.ndarray, eps: float = 1e-12) -> float:
    """Cross-entropy of the probabilities against the labels."""
    scores, labels = _check_ranking_inputs(scores, labels)
    clipped = np.clip(scores, eps, 1.0 - eps)
    y = labels.astype(float)
    return float(-np.mean(y * np.log(clipped) + (1 - y) * np.log1p(-clipped)))


def _check_ranking_inputs(
    scores: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=bool)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise ValueError(
            f"scores {scores.shape} and labels {labels.shape} must be equal-length 1-D"
        )
    if np.any(np.isnan(scores)):
        raise ValueError("scores contain NaN")
    return scores, labels
