"""Statistical significance of method comparisons (paired bootstrap).

The paper compares methods by point estimates; a production evaluation also
needs to know whether "PrecRecCorr beats PrecRec by 0.02 F1" is signal or
gold-standard sampling noise.  This module provides the standard paired
bootstrap over triples: resample the gold standard with replacement, score
both methods on each resample, and summarise the distribution of the metric
difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal

import numpy as np

from repro.eval.metrics import auc_pr, auc_roc, binary_metrics
from repro.util.rng import RngLike, ensure_rng
from repro.util.validation import check_positive_int

MetricName = Literal["f1", "precision", "recall", "auc_pr", "auc_roc"]


@dataclass(frozen=True)
class BootstrapComparison:
    """Summary of a paired bootstrap between two score vectors."""

    metric: str
    observed_a: float
    observed_b: float
    mean_difference: float
    ci_low: float
    ci_high: float
    #: Fraction of resamples where A did NOT beat B -- a one-sided
    #: "probability the advantage is noise".
    p_not_better: float
    n_resamples: int

    @property
    def observed_difference(self) -> float:
        return self.observed_a - self.observed_b

    def significant(self, level: float = 0.05) -> bool:
        """Whether A > B at the given one-sided level."""
        return self.p_not_better < level

    def __str__(self) -> str:
        return (
            f"{self.metric}: A={self.observed_a:.3f} B={self.observed_b:.3f} "
            f"diff={self.observed_difference:+.3f} "
            f"[{self.ci_low:+.3f}, {self.ci_high:+.3f}] "
            f"p(not better)={self.p_not_better:.3f}"
        )


def _metric_fn(metric: MetricName, threshold: float) -> Callable:
    if metric == "auc_pr":
        return lambda s, y: auc_pr(s, y)
    if metric == "auc_roc":
        return lambda s, y: auc_roc(s, y)

    def binary(s: np.ndarray, y: np.ndarray) -> float:
        m = binary_metrics(s >= threshold - 1e-9, y)
        return getattr(m, metric)

    if metric in ("f1", "precision", "recall"):
        return binary
    raise ValueError(f"unknown metric {metric!r}")


def paired_bootstrap(
    scores_a: np.ndarray,
    scores_b: np.ndarray,
    labels: np.ndarray,
    metric: MetricName = "f1",
    threshold: float = 0.5,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: RngLike = None,
) -> BootstrapComparison:
    """Paired bootstrap of ``metric(A) - metric(B)`` over the triples.

    Both methods are evaluated on the *same* resample each round, so shared
    easy/hard triples cancel out -- the appropriate test when two fusers
    score one dataset.
    """
    check_positive_int(n_resamples, "n_resamples")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    scores_a = np.asarray(scores_a, dtype=float)
    scores_b = np.asarray(scores_b, dtype=float)
    labels = np.asarray(labels, dtype=bool)
    if not scores_a.shape == scores_b.shape == labels.shape:
        raise ValueError("scores_a, scores_b, labels must share one shape")
    rng = ensure_rng(seed)
    fn = _metric_fn(metric, threshold)

    observed_a = fn(scores_a, labels)
    observed_b = fn(scores_b, labels)
    n = labels.size
    differences = np.empty(n_resamples)
    not_better = 0
    for k in range(n_resamples):
        sample = rng.integers(0, n, size=n)
        value_a = fn(scores_a[sample], labels[sample])
        value_b = fn(scores_b[sample], labels[sample])
        differences[k] = value_a - value_b
        if value_a <= value_b:
            not_better += 1
    tail = (1.0 - confidence) / 2.0
    return BootstrapComparison(
        metric=metric,
        observed_a=float(observed_a),
        observed_b=float(observed_b),
        mean_difference=float(differences.mean()),
        ci_low=float(np.quantile(differences, tail)),
        ci_high=float(np.quantile(differences, 1.0 - tail)),
        p_not_better=not_better / n_resamples,
        n_resamples=n_resamples,
    )
