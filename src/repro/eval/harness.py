"""Experiment harness: run methods over datasets the way Section 5 does.

The harness owns three jobs:

- **MethodSpec** -- a named recipe that builds a fuser *for a given dataset*
  (supervised methods fit their quality model on the dataset's labels at
  build time, exactly like the paper calibrates on the gold standard);
- **run_method / run_comparison** -- execute specs, time them end-to-end
  (fitting + scoring), and package binary metrics, PR/ROC curves and AUCs;
- **sweeps** -- repeat a generator-backed experiment over seeds and average,
  which is how Figures 6 and 7 are produced ("we averaged 10 repetitions").
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.baselines.estimates import ThreeEstimatesFuser
from repro.baselines.ltm import LatentTruthModel
from repro.baselines.voting import UnionKFuser
from repro.core.api import (
    ScoringSession,
    check_refit_mode,
    fit_model,
    make_fuser,
)
from repro.core.fusion import DEFAULT_THRESHOLD, FusionResult, TruthFuser
from repro.core.observations import ObservationMatrix
from repro.data.model import FusionDataset
from repro.eval.metrics import BinaryMetrics, Curve, binary_metrics, pr_curve, roc_curve

FuserBuilder = Callable[[FusionDataset], TruthFuser]


@dataclass(frozen=True)
class MethodSpec:
    """A named, dataset-parameterised fuser recipe."""

    name: str
    build: FuserBuilder


@dataclass(frozen=True)
class MethodEvaluation:
    """Everything Section 5 reports about one method on one dataset."""

    method: str
    result: FusionResult
    metrics: BinaryMetrics
    pr: Curve
    roc: Curve
    elapsed_seconds: float

    @property
    def precision(self) -> float:
        return self.metrics.precision

    @property
    def recall(self) -> float:
        return self.metrics.recall

    @property
    def f1(self) -> float:
        return self.metrics.f1

    @property
    def auc_pr(self) -> float:
        return self.pr.area

    @property
    def auc_roc(self) -> float:
        return self.roc.area


def evaluate_result(
    result: FusionResult, labels: np.ndarray, elapsed_seconds: Optional[float] = None
) -> MethodEvaluation:
    """Score a finished :class:`FusionResult` against gold labels."""
    labels = np.asarray(labels, dtype=bool)
    return MethodEvaluation(
        method=result.method,
        result=result,
        metrics=binary_metrics(result.accepted, labels),
        pr=pr_curve(result.scores, labels),
        roc=roc_curve(result.scores, labels),
        elapsed_seconds=(
            result.elapsed_seconds if elapsed_seconds is None else elapsed_seconds
        ),
    )


def run_method(dataset: FusionDataset, spec: MethodSpec) -> MethodEvaluation:
    """Build, run, time, and evaluate one method on one dataset.

    The clock covers building (which includes model fitting for supervised
    methods) plus scoring -- the paper's runtimes are end-to-end too.
    """
    start = time.perf_counter()
    fuser = spec.build(dataset)
    result = fuser.fuse(dataset.observations)
    elapsed = time.perf_counter() - start
    result = FusionResult(
        method=spec.name,
        scores=result.scores,
        threshold=result.threshold,
        elapsed_seconds=elapsed,
    )
    return evaluate_result(result, dataset.labels, elapsed_seconds=elapsed)


@dataclass
class Comparison:
    """All methods' evaluations on one dataset, in run order."""

    dataset: FusionDataset
    evaluations: list[MethodEvaluation] = field(default_factory=list)

    def __getitem__(self, method: str) -> MethodEvaluation:
        for evaluation in self.evaluations:
            if evaluation.method == method:
                return evaluation
        raise KeyError(f"no evaluation for method {method!r}")

    @property
    def methods(self) -> list[str]:
        return [e.method for e in self.evaluations]

    def best_by_f1(self) -> MethodEvaluation:
        return max(self.evaluations, key=lambda e: e.f1)


def run_comparison(
    dataset: FusionDataset, specs: Sequence[MethodSpec]
) -> Comparison:
    """Run every spec on the dataset (the paper's Figure 4 protocol)."""
    comparison = Comparison(dataset=dataset)
    for spec in specs:
        comparison.evaluations.append(run_method(dataset, spec))
    return comparison


# ----------------------------------------------------------------------
# Serving loop: fit once, score repeatedly
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServingReport:
    """Timing of one fit plus repeated scoring through a ScoringSession.

    Attributes
    ----------
    method:
        The session's method name.
    fit_seconds:
        Model fitting + fuser construction time.
    cold_seconds:
        The first ``score`` call -- pays pattern extraction, plan
        collection, compilation, and model evaluation.
    warm_seconds:
        Each subsequent ``score`` call, in order -- the plan-cache path
        (with ``mutate_frac > 0``, the delta path over a mutation trace).
    max_warm_drift:
        Largest ``|warm score - reference score|`` over all repeats.  With
        an unmutated trace the reference is the cold run; with mutation,
        each step's reference is an independent delta-off session scoring
        the same mutated matrix.  Both must be exactly 0.0.  NaN when a
        mutated trace had no delta layer to check (``delta="off"``, EM,
        legacy engine): the session already scores through the plain
        path, so no independent reference exists.
    result:
        The cold run's :class:`FusionResult`.
    workers:
        Effective worker count the session scored with (1 = serial).
    delta:
        The session's delta-scoring mode (``"auto"`` / ``"off"``).
    mutate_frac:
        Fraction of triple columns mutated between consecutive repeats
        (0.0 reproduces the identical-matrix serving loop).
    plan_cache_stats, joint_cache_stats, delta_stats:
        Final counters of the compiled-plan cache, the bitmask-keyed
        joint cache, and the delta engine (empty when the layer is
        absent) -- see ``ScoringSession.cache_stats``.
    refit_every, refit_mode:
        The streaming-refit schedule the loop ran with (0 = no refits).
    refit_seconds:
        Wall-clock of each primary-session refit, in step order (empty
        with ``refit_every == 0``).
    refit_max_score_diff:
        Largest ``|primary score - cold-refit reference score|`` over the
        refit steps.  Exactly 0.0 for model-based methods (delta refits
        are bit-identical by construction, and :func:`run_serving` raises
        if not); small but nonzero for warm-started EM (same fixed point,
        different trajectory); NaN when no refits ran.
    refit_stats:
        The session's ``cache_stats()["refit"]`` block: delta vs cold
        refits taken, per-refit dirty-word fractions, EM warm-start
        counters (empty with no refits).
    """

    method: str
    fit_seconds: float
    cold_seconds: float
    warm_seconds: tuple[float, ...]
    max_warm_drift: float
    result: FusionResult
    workers: int = 1
    delta: str = "off"
    mutate_frac: float = 0.0
    plan_cache_stats: Mapping = field(default_factory=dict)
    joint_cache_stats: Mapping = field(default_factory=dict)
    delta_stats: Mapping = field(default_factory=dict)
    refit_every: int = 0
    refit_mode: str = "cold"
    refit_seconds: tuple[float, ...] = ()
    refit_max_score_diff: float = float("nan")
    refit_stats: Mapping = field(default_factory=dict)
    #: Final :attr:`repro.persist.Checkpointer.stats` when the loop ran
    #: with ``checkpoint_dir`` (empty otherwise).
    checkpoint_stats: Mapping = field(default_factory=dict)

    @property
    def repeats(self) -> int:
        """Warm ``score`` calls after the cold one."""
        return len(self.warm_seconds)

    @property
    def refit_count(self) -> int:
        """Primary-session refits the loop performed."""
        return len(self.refit_seconds)

    @property
    def refit_mean_seconds(self) -> float:
        if not self.refit_seconds:
            return float("nan")
        return float(np.mean(self.refit_seconds))

    @property
    def warm_mean_seconds(self) -> float:
        if not self.warm_seconds:
            return float("nan")
        return float(np.mean(self.warm_seconds))

    @property
    def warm_best_seconds(self) -> float:
        if not self.warm_seconds:
            return float("nan")
        return float(min(self.warm_seconds))

    @property
    def cold_over_warm(self) -> float:
        """Cold-to-warm-mean speedup ratio (NaN with no warm repeats)."""
        warm = self.warm_mean_seconds
        if np.isnan(warm):
            return warm
        return self.cold_seconds / warm if warm > 0 else float("inf")


def mutate_observations(
    observations: ObservationMatrix,
    frac: float,
    rng: np.random.Generator,
) -> ObservationMatrix:
    """Flip provider bits in ``~frac`` of the triple columns.

    The streaming-trace step: for each selected column one random source's
    provide bit is toggled (only where that source covers the triple, so
    the matrix stays valid).  Coverage is untouched -- the shape of real
    update streams, where claims arrive and retract but scopes are stable.
    """
    if not 0.0 <= frac <= 1.0:
        raise ValueError(f"mutate fraction must be in [0, 1], got {frac}")
    n_triples = observations.n_triples
    n_sources = observations.n_sources
    if n_triples == 0 or n_sources == 0 or frac == 0.0:
        return observations
    count = min(max(1, int(round(frac * n_triples))), n_triples)
    columns = rng.choice(n_triples, size=count, replace=False)
    rows = rng.integers(0, n_sources, size=count)
    covered = observations.coverage[rows, columns]
    provides = observations.provides.copy()
    provides[rows[covered], columns[covered]] ^= True
    return ObservationMatrix(
        provides,
        observations.source_names,
        triple_index=observations.triple_index,
        coverage=observations.coverage,
    )


def mutation_trace(
    observations: ObservationMatrix,
    steps: int,
    frac: float,
    seed: int = 0,
) -> list[ObservationMatrix]:
    """``steps`` successive mutations of ``observations`` (cumulative).

    Each step mutates the previous step's matrix, so consecutive entries
    differ by ``~frac`` of their columns -- the replay input for
    ``run_serving(mutate_frac=...)`` and the delta-serving benchmark.
    """
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    rng = np.random.default_rng(seed)
    trace: list[ObservationMatrix] = []
    current = observations
    for _ in range(steps):
        current = mutate_observations(current, frac, rng)
        trace.append(current)
    return trace


def run_serving(
    dataset: FusionDataset,
    method: str = "precreccorr",
    repeats: int = 5,
    threshold: float = DEFAULT_THRESHOLD,
    prior: Optional[float] = None,
    smoothing: float = 0.0,
    engine: str = "vectorized",
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    delta: str = "auto",
    mutate_frac: float = 0.0,
    mutate_seed: int = 0,
    refit_every: int = 0,
    refit_mode: str = "cold",
    checkpoint_dir: Optional[str] = None,
    snapshot_every: int = 4,
    record_trace: Optional[str] = None,
    replay_trace: Optional[str] = None,
    **options: Any,
) -> ServingReport:
    """Fit once on ``dataset`` and score it ``1 + repeats`` times.

    The serving-loop probe behind ``python -m repro fuse --repeat`` and
    the plan-cache / delta benchmarks: one :class:`ScoringSession` is
    fitted on the dataset's labels, the first ``score`` is timed cold,
    and ``repeats`` further calls measure the warm path.

    With ``mutate_frac == 0`` every repeat re-scores the identical matrix
    (the compiled-plan-cache loop; with ``delta="auto"`` the delta engine
    short-circuits it outright) and drift is measured against the cold
    run.  With ``mutate_frac > 0`` the repeats replay a *mutation trace*:
    each repeat scores a matrix differing from the previous one in
    ``~mutate_frac`` of its columns -- the streaming-serving shape the
    delta engine exists for -- and every delta-scored step is checked
    bit-for-bit against a plain (non-delta) scoring of the same matrix.

    ``refit_every=N`` (with ``N > 0``) refits the primary session on
    every N-th repeat's matrix (against the dataset's labels) before
    scoring it -- the streaming shape where fresh training labels arrive
    periodically.  ``refit_mode`` picks the strategy: ``"cold"`` rebuilds
    from scratch (:meth:`ScoringSession.refit`), ``"delta"`` transports
    counts incrementally (:meth:`ScoringSession.refit_delta`).  Every
    refit step is verified against an independent reference session that
    always cold-refits in lockstep: for model-based methods the primary's
    post-refit scores must match the reference **exactly** (a nonzero
    difference raises ``RuntimeError``); for warm-started EM the gap is
    recorded in ``refit_max_score_diff`` but not enforced, since a warm
    trajectory reaches the same fixed point without being bitwise
    identical.  Refit wall-clock is kept off the scoring clock and lands
    in ``ServingReport.refit_seconds``.

    ``workers``/``shard_size`` configure sharded parallel scoring inside
    the session (scores are bit-identical at any worker count); the
    effective count lands in ``ServingReport.workers``, and the final
    cache/delta counters land in the report's stats fields.

    ``checkpoint_dir`` arms durability: a
    :class:`repro.persist.Checkpointer` snapshots the initial generation,
    logs every trace step as a WAL mutation record before it is scored,
    and persists each refit (begin/publish records plus snapshots every
    ``snapshot_every`` refits) -- the state a crashed process recovers
    from.  ``record_trace`` writes the mutation trace to a standalone
    recorded-trace file; ``replay_trace`` drives the loop from a
    previously recorded file instead of drawing from ``mutate_frac``.
    """
    if repeats < 0:
        raise ValueError(f"repeats must be non-negative, got {repeats}")
    if not 0.0 <= mutate_frac <= 1.0:
        raise ValueError(
            f"mutate_frac must be in [0, 1], got {mutate_frac}"
        )
    if refit_every < 0:
        raise ValueError(
            f"refit_every must be non-negative, got {refit_every}"
        )
    refit_mode = check_refit_mode(refit_mode)
    session = ScoringSession(
        dataset.observations,
        dataset.labels,
        method=method,
        prior=prior,
        smoothing=smoothing,
        engine=engine,
        threshold=threshold,
        workers=workers,
        shard_size=shard_size,
        delta=delta,
        **options,
    )
    checkpointer = None
    if checkpoint_dir is not None:
        from repro.persist import Checkpointer

        checkpointer = Checkpointer.attach(
            session,
            dataset.observations,
            dataset.labels,
            Path(checkpoint_dir),
            snapshot_every=snapshot_every,
        )
    start = time.perf_counter()
    result = session.fuse(dataset.observations)
    cold_seconds = time.perf_counter() - start
    mutated_trace = True
    if replay_trace is not None:
        from repro.persist import replay_mutation_trace

        trace, _ = replay_mutation_trace(
            Path(replay_trace), dataset.observations, limit=repeats
        )
        if len(trace) < repeats:
            raise ValueError(
                f"recorded trace {replay_trace} holds {len(trace)} steps; "
                f"{repeats} repeats requested"
            )
    elif mutate_frac > 0.0:
        trace = mutation_trace(
            dataset.observations, repeats, mutate_frac, seed=mutate_seed
        )
    else:
        trace = [dataset.observations] * repeats
        mutated_trace = False
    if record_trace is not None:
        if not mutated_trace:
            raise ValueError(
                "record_trace needs a mutated trace (mutate_frac > 0 or "
                "replay_trace)"
            )
        from repro.persist import record_mutation_trace

        record_mutation_trace(
            Path(record_trace), dataset.observations, trace, dataset.labels
        )
    reference_session: Optional[ScoringSession] = None
    if refit_every > 0 or (
        mutated_trace and session.delta_scorer is not None
    ):
        # The per-step drift reference must be *independent* of the delta
        # machinery -- the primary session's own fuser shares the pattern
        # memos the delta path populates, so scoring through it could
        # never expose a corrupted memo entry.  A second, delta-off
        # session fits the same model state and scores every mutated
        # matrix through the plain PR 3/4 path.  With refits scheduled
        # the reference is also the verification oracle: it always
        # cold-refits in lockstep with the primary, whatever the
        # primary's refit_mode.
        reference_session = ScoringSession(
            dataset.observations,
            dataset.labels,
            method=method,
            prior=prior,
            smoothing=smoothing,
            engine=engine,
            threshold=threshold,
            workers=workers,
            shard_size=shard_size,
            delta="off",
            **options,
        )
    warm_seconds: list[float] = []
    refit_seconds: list[float] = []
    max_drift = 0.0
    refit_max_diff = float("nan")
    warm_em_refits = method.lower() == "em" and refit_mode == "delta"
    em_reference_stale = False
    # With mutation but no delta layer (delta="off", EM, legacy engine)
    # session.score *is* the plain path: there is nothing independent to
    # check a mutated step against, and the report says so with NaN
    # instead of a vacuous 0.0.
    drift_checked = not mutated_trace or reference_session is not None
    for step, observations in enumerate(trace, start=1):
        refit_step = refit_every > 0 and step % refit_every == 0
        if checkpointer is not None and mutated_trace:
            # Append-before-apply: the step's matrix becomes durable
            # before any refit or score acts on it.
            checkpointer.log_mutation(observations, step=step - 1)
        if refit_step:
            refit_start = time.perf_counter()
            if refit_mode == "delta":
                session.refit_delta(observations, dataset.labels)
            else:
                session.refit(observations, dataset.labels)
            refit_seconds.append(time.perf_counter() - refit_start)
            if reference_session is not None:
                # Off the clock: the oracle always rebuilds cold.
                reference_session.refit(observations, dataset.labels)
        start = time.perf_counter()
        scores = session.score(observations)
        warm_seconds.append(time.perf_counter() - start)
        if reference_session is not None:
            # Off the clock: the delta path must be bit-identical to
            # plain cold scoring at every step.
            reference = reference_session.score(observations)
        elif drift_checked:
            reference = result.scores
        else:
            continue
        drift = (
            float(np.abs(scores - reference).max()) if len(scores) else 0.0
        )
        if refit_step:
            refit_max_diff = (
                drift
                if np.isnan(refit_max_diff)
                else max(refit_max_diff, drift)
            )
            if drift != 0.0 and not warm_em_refits:
                raise RuntimeError(
                    f"refit_mode={refit_mode!r} scores diverged from a cold "
                    f"refit by {drift} at step {step}; delta refits must be "
                    "bit-identical"
                )
            if warm_em_refits:
                # Warm-started EM legitimately differs from the cold
                # trajectory; keep it out of the bit-identity drift field.
                # The reference session's model now differs from the
                # primary's for good, so later steps can't be compared
                # against it either.
                em_reference_stale = True
                continue
        if em_reference_stale:
            continue
        max_drift = max(max_drift, drift)
    if not drift_checked:
        max_drift = float("nan")
    checkpoint_stats: dict[str, Any] = {}
    if checkpointer is not None:
        checkpoint_stats = checkpointer.stats
        checkpointer.close()
        session.attach_checkpointer(None)
    stats = session.cache_stats()
    return ServingReport(
        method=result.method,
        fit_seconds=session.fit_seconds,
        cold_seconds=cold_seconds,
        warm_seconds=tuple(warm_seconds),
        max_warm_drift=max_drift,
        result=result,
        workers=session.workers,
        delta=session.delta,
        mutate_frac=mutate_frac,
        plan_cache_stats={
            key: value
            for key, value in stats.items()
            if not isinstance(value, Mapping)
        },
        joint_cache_stats=dict(stats.get("joint_cache", {})),
        delta_stats=dict(stats.get("delta", {})),
        refit_every=refit_every,
        refit_mode=refit_mode,
        refit_seconds=tuple(refit_seconds),
        refit_max_score_diff=refit_max_diff,
        refit_stats=dict(stats.get("refit", {})),
        checkpoint_stats=checkpoint_stats,
    )


# ----------------------------------------------------------------------
# Open-loop serving load: the async front end under a fixed arrival rate
# ----------------------------------------------------------------------


def serving_request_trace(
    observations: ObservationMatrix,
    requests: int,
    request_triples: int,
    mutate_frac: float = 0.02,
    seed: int = 0,
    cold_every: int = 4,
) -> list[ObservationMatrix]:
    """A deterministic per-request trace for the serving load generator.

    Builds a cumulative :func:`mutation_trace` of the full matrix and
    slices one ``request_triples``-wide window out of each step.  Most
    requests read the *same* leading window, so consecutive requests
    differ only in the step's mutated columns -- the delta-lane shape.
    Every ``cold_every``-th request instead reads a roaming window
    elsewhere in the matrix (high churn against the stream), giving the
    cold lane steady traffic.  ``cold_every=0`` disables the roamers.
    """
    if requests < 0:
        raise ValueError(f"requests must be non-negative, got {requests}")
    if request_triples < 1:
        raise ValueError(
            f"request_triples must be >= 1, got {request_triples}"
        )
    width = min(request_triples, observations.n_triples)
    variants = mutation_trace(observations, requests, mutate_frac, seed=seed)
    trace: list[ObservationMatrix] = []
    for k, variant in enumerate(variants):
        mask = np.zeros(variant.n_triples, dtype=bool)
        if cold_every > 0 and k % cold_every == cold_every - 1:
            span = max(1, variant.n_triples - width)
            lo = (1 + k * width) % span
            mask[lo : lo + width] = True
        else:
            mask[:width] = True
        trace.append(variant.restricted_to_triples(mask))
    return trace


@dataclass(frozen=True)
class AsyncServingReport:
    """One open-loop load run through the async serving front end.

    Latencies are *open-loop*: measured from each request's scheduled
    arrival time (``start + k / rate_qps``), not from when the generator
    got around to submitting it, so a backlogged server cannot hide
    queueing delay the way a closed-loop measurement would.
    ``max_abs_diff`` is the largest ``|served - direct session.score|``
    over every completed request, each checked against an independent
    delta-off twin session of the generation that served it -- exactly
    0.0 is the contract, including for requests served across a
    mid-traffic refit.  Shed requests (typed ``Overloaded`` rejections)
    are counted, never silently retried.
    """

    method: str
    batch_cutoff: str
    rate_qps: float
    requests: int
    completed: int
    shed: int
    duration_seconds: float
    achieved_qps: float
    latency_budget: float
    p50_latency_seconds: float
    p99_latency_seconds: float
    mean_latency_seconds: float
    max_latency_seconds: float
    max_abs_diff: float
    refits: int
    latencies: tuple[float, ...] = ()
    admission_stats: Mapping = field(default_factory=dict)
    routing_stats: Mapping = field(default_factory=dict)
    frontend_stats: Mapping = field(default_factory=dict)
    checkpoint_stats: Mapping = field(default_factory=dict)

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.requests if self.requests else 0.0


def _latency_percentile(latencies: Sequence[float], q: float) -> float:
    if not latencies:
        return float("nan")
    return float(np.percentile(np.asarray(latencies, dtype=float), q))


def run_serving_load(
    dataset: FusionDataset,
    method: str = "precreccorr",
    rate_qps: float = 200.0,
    requests: int = 200,
    request_triples: int = 96,
    latency_budget: float = 0.05,
    batch_cutoff: str = "deadline",
    fixed_window_seconds: float = 0.04,
    max_batch_requests: int = 32,
    max_queue_depth: int = 256,
    max_inflight_bytes: Optional[int] = None,
    mutate_frac: float = 0.02,
    cold_every: int = 4,
    seed: int = 0,
    refit_every: int = 0,
    refit_mode: str = "delta",
    workers: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    snapshot_every: int = 4,
    **options: Any,
) -> AsyncServingReport:
    """Drive the async front end with an open-loop load generator.

    Arrivals are scheduled at fixed times ``k / rate_qps`` regardless of
    completions (open-loop -- the load does not slow down when the
    server falls behind, unlike a closed-loop driver whose backpressure
    flatters p99).  Each request is one window of a deterministic
    mutation trace (:func:`serving_request_trace`) submitted with
    ``latency_budget``; overload sheds are counted via the front end's
    typed ``Overloaded`` error.

    ``refit_every=N`` (requests) schedules generation swaps *during* the
    run: at every N-th arrival slot a refit task submits the step's full
    mutated matrix through :meth:`AsyncServingFrontend.refit` with
    ``refit_mode``, exercising the drain -> swap -> replay protocol
    under live traffic.

    Every completed request is verified bit-for-bit against an
    independent delta-off twin session of the generation that served it
    (cold-fitted on exactly the inputs that generation was fitted on);
    the largest difference lands in ``max_abs_diff`` and must be exactly
    0.0.  ``method="em"`` cannot be combined with ``refit_every > 0``:
    warm-started EM refits are not bitwise reproducible, so no
    independent oracle exists.

    ``checkpoint_dir`` arms durability: a
    :class:`~repro.persist.Checkpointer` is attached through the front
    end, so every mid-traffic generation swap lands in the WAL (input
    mutation + begin/publish) and snapshots follow the
    ``snapshot_every`` cadence; its counters land in
    ``checkpoint_stats``.
    """
    from repro.serve import AsyncServingFrontend, Overloaded

    if rate_qps <= 0.0:
        raise ValueError(f"rate_qps must be positive, got {rate_qps}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if refit_every < 0:
        raise ValueError(
            f"refit_every must be non-negative, got {refit_every}"
        )
    refit_mode = check_refit_mode(refit_mode)
    if refit_every > 0 and method.lower() == "em":
        raise ValueError(
            "refit_every > 0 is not supported with method='em': warm EM "
            "refits are not bitwise reproducible, so served scores have "
            "no independent oracle"
        )
    session = ScoringSession(
        dataset.observations,
        dataset.labels,
        method=method,
        workers=workers,
        micro_batch="off",
        **options,
    )
    trace = serving_request_trace(
        dataset.observations,
        requests,
        request_triples,
        mutate_frac=mutate_frac,
        seed=seed,
        cold_every=cold_every,
    )
    # Full-matrix refit inputs, one per scheduled refit, continuing the
    # request trace's mutation stream deterministically.
    n_refits = requests // refit_every if refit_every > 0 else 0
    refit_matrices = mutation_trace(
        dataset.observations, n_refits, mutate_frac, seed=seed + 1
    )
    checkpointer = None
    if checkpoint_dir is not None:
        from repro.persist import Checkpointer

        checkpointer = Checkpointer(
            Path(checkpoint_dir), snapshot_every=snapshot_every
        )
        checkpointer.begin(session, dataset.observations, dataset.labels)
    frontend = AsyncServingFrontend(
        session,
        max_queue_depth=max_queue_depth,
        max_inflight_bytes=max_inflight_bytes,
        max_batch_requests=max_batch_requests,
        default_latency_budget=latency_budget,
        batch_cutoff=batch_cutoff,
        fixed_window_seconds=fixed_window_seconds,
        checkpointer=checkpointer,
    )
    results: list[Optional[Any]] = [None] * requests
    shed = 0
    latencies: list[float] = []

    async def _run() -> float:
        nonlocal shed
        async with frontend:
            loop = asyncio.get_running_loop()
            start = loop.time()

            async def fire(k: int, matrix: ObservationMatrix) -> None:
                nonlocal shed
                scheduled = start + k / rate_qps
                delay = scheduled - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                try:
                    results[k] = await frontend.submit_detailed(
                        matrix, latency_budget=latency_budget
                    )
                except Overloaded:
                    shed += 1
                    return
                latencies.append(loop.time() - scheduled)

            async def refit_at(g: int, matrix: ObservationMatrix) -> None:
                scheduled = start + (g + 1) * refit_every / rate_qps
                delay = scheduled - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                await frontend.refit(matrix, dataset.labels, mode=refit_mode)

            tasks = [
                asyncio.ensure_future(fire(k, matrix))
                for k, matrix in enumerate(trace)
            ]
            tasks.extend(
                asyncio.ensure_future(refit_at(g, matrix))
                for g, matrix in enumerate(refit_matrices)
            )
            await asyncio.gather(*tasks)
            return loop.time() - start

    duration = asyncio.run(_run())
    # Bit-identity oracle: one independent delta-off twin per generation,
    # cold-fitted on exactly that generation's training inputs.  Delta
    # refits of count-based models are bit-identical to cold refits, so
    # the twin reproduces the serving session's scores exactly.
    fit_inputs = [dataset.observations] + refit_matrices
    twins: dict[int, ScoringSession] = {}
    max_abs_diff = 0.0
    try:
        for k, result in enumerate(results):
            if result is None:
                continue
            generation = int(result.generation)
            twin = twins.get(generation)
            if twin is None:
                twin = ScoringSession(
                    fit_inputs[generation],
                    dataset.labels,
                    method=method,
                    workers=workers,
                    delta="off",
                    micro_batch="off",
                    **options,
                )
                twins[generation] = twin
            direct = twin.score(trace[k])
            if len(result.scores):
                diff = float(np.abs(result.scores - direct).max())
                max_abs_diff = max(max_abs_diff, diff)
    finally:
        for twin in twins.values():
            twin.close()
        session.close()
    stats = frontend.stats
    checkpoint_stats: Mapping = {}
    if checkpointer is not None:
        checkpoint_stats = checkpointer.stats
        checkpointer.close()
        session.attach_checkpointer(None)
    completed = sum(1 for result in results if result is not None)
    return AsyncServingReport(
        method=method,
        batch_cutoff=batch_cutoff,
        rate_qps=float(rate_qps),
        requests=requests,
        completed=completed,
        shed=shed,
        duration_seconds=float(duration),
        achieved_qps=completed / duration if duration > 0 else float("nan"),
        latency_budget=float(latency_budget),
        p50_latency_seconds=_latency_percentile(latencies, 50.0),
        p99_latency_seconds=_latency_percentile(latencies, 99.0),
        mean_latency_seconds=(
            float(np.mean(latencies)) if latencies else float("nan")
        ),
        max_latency_seconds=(
            float(np.max(latencies)) if latencies else float("nan")
        ),
        max_abs_diff=max_abs_diff,
        refits=int(stats["refits"]),
        latencies=tuple(latencies),
        admission_stats=dict(stats["admission"]),
        routing_stats=dict(stats["routing"]),
        frontend_stats={
            "lanes": stats["lanes"],
            "fused_requests": stats["fused_requests"],
            "largest_batch": stats["largest_batch"],
            "batch_cutoff": stats["batch_cutoff"],
        },
        checkpoint_stats=checkpoint_stats,
    )


# ----------------------------------------------------------------------
# Chaos replay: the serving front end under deterministic fault injection
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServingChaosReport:
    """One seeded chaos replay through the async serving front end.

    The contract a passing report certifies: under the injected fault
    schedule (``fault_spec``), every admitted request *terminated* --
    ``completed + shed + failed == requests`` with nothing hung -- the
    admission ledger drained to exactly zero depth and zero in-flight
    bytes, and every completed request's scores are **bit-identical**
    (``max_abs_diff == 0.0``) to an independent fault-free cold twin of
    the generation that served it.  ``failed`` counts requests whose
    future resolved with a non-``Overloaded`` error; the degradation
    ladder makes this rare (only dispatch-site faults or per-request
    cold-scoring errors reach callers), but a typed failure is a legal
    terminal outcome -- a hang is not.
    """

    method: str
    fault_spec: str
    rate_qps: float
    requests: int
    completed: int
    shed: int
    failed: int
    refit_attempts: int
    refit_failures: int
    refits: int
    duration_seconds: float
    max_abs_diff: float
    retries: int
    degraded_batches: int
    forced_degrades: int
    admission_depth_after: int
    admission_inflight_bytes_after: int
    fault_stats: Mapping = field(default_factory=dict)
    pool_stats: Mapping = field(default_factory=dict)
    admission_stats: Mapping = field(default_factory=dict)
    resilience_stats: Mapping = field(default_factory=dict)
    checkpoint_stats: Mapping = field(default_factory=dict)

    @property
    def terminated(self) -> int:
        return self.completed + self.shed + self.failed


def run_serving_chaos(
    dataset: FusionDataset,
    method: str = "precreccorr",
    rate_qps: float = 200.0,
    requests: int = 120,
    request_triples: int = 96,
    latency_budget: float = 0.05,
    batch_cutoff: str = "deadline",
    fixed_window_seconds: float = 0.04,
    max_batch_requests: int = 32,
    max_queue_depth: int = 256,
    max_inflight_bytes: Optional[int] = None,
    mutate_frac: float = 0.02,
    cold_every: int = 4,
    seed: int = 0,
    refit_every: int = 0,
    refit_mode: str = "delta",
    workers: Optional[int] = None,
    fault_spec: Optional[str] = None,
    fault_seed: int = 0,
    scoring_timeout: Optional[float] = 1.0,
    max_retries: int = 2,
    breaker_threshold: int = 5,
    breaker_cooldown: float = 0.25,
    breaker_policy: str = "degrade",
    max_seconds: float = 120.0,
    checkpoint_dir: Optional[str] = None,
    snapshot_every: int = 4,
    **options: Any,
) -> ServingChaosReport:
    """Replay an open-loop serving trace under a seeded fault schedule.

    The same open-loop arrival process as :func:`run_serving_load`, but
    with a :class:`~repro.core.faults.FaultPlan` installed for the
    duration of the traffic phase: ``fault_spec`` names an explicit
    schedule (``"worker:kill:2,score:raise:1:0"``), otherwise an
    already-installed injector (e.g. from ``REPRO_FAULTS``) is reused,
    otherwise ``FaultPlan.random(fault_seed)`` draws one.  The injector
    is uninstalled before verification, so the bit-identity twins run
    fault-free.

    The run *asserts* the fault-tolerance contract and raises
    ``RuntimeError`` on any violation:

    - complete accounting: every request terminates as completed, shed
      (typed ``Overloaded``), or failed -- within ``max_seconds`` wall
      clock, so a hang is a failure, not a wait;
    - admission drain: queue depth and in-flight bytes are exactly zero
      after the front end closes (no leaked budget on any error path);
    - bit-identity: completed scores match a fault-free delta-off cold
      twin of the serving generation with ``max_abs_diff == 0.0`` --
      every degradation-ladder rung is exactness-preserving.

    ``checkpoint_dir`` additionally arms durability *under* the fault
    schedule: ``persist``-site faults (torn writes, IO errors) may then
    land inside WAL appends and snapshot writes, and the checkpointer
    must absorb them -- retrying once off its self-repaired tail, then
    degrading visibly (``checkpoint_stats["degraded"]``) rather than
    ever failing the serving path.
    """
    from repro.core import faults
    from repro.serve import AsyncServingFrontend, Overloaded, RetryPolicy

    if rate_qps <= 0.0:
        raise ValueError(f"rate_qps must be positive, got {rate_qps}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if refit_every < 0:
        raise ValueError(
            f"refit_every must be non-negative, got {refit_every}"
        )
    if max_seconds <= 0.0:
        raise ValueError(f"max_seconds must be positive, got {max_seconds}")
    refit_mode = check_refit_mode(refit_mode)
    if refit_every > 0 and method.lower() == "em":
        raise ValueError(
            "refit_every > 0 is not supported with method='em': warm EM "
            "refits are not bitwise reproducible, so served scores have "
            "no independent oracle"
        )
    # Fault schedule precedence: explicit spec > pre-installed injector
    # (REPRO_FAULTS or a caller's plan) > a seeded random draw.  Only
    # plans this function installs are uninstalled by it.
    owned = False
    if fault_spec is not None:
        injector = faults.install(faults.FaultPlan.from_spec(fault_spec))
        owned = True
    else:
        existing = faults.active_injector()
        if existing is not None:
            injector = existing
        else:
            injector = faults.install(faults.FaultPlan.random(fault_seed))
            owned = True
    effective_spec = injector.plan.spec
    session = ScoringSession(
        dataset.observations,
        dataset.labels,
        method=method,
        workers=workers,
        micro_batch="off",
        **options,
    )
    trace = serving_request_trace(
        dataset.observations,
        requests,
        request_triples,
        mutate_frac=mutate_frac,
        seed=seed,
        cold_every=cold_every,
    )
    n_refits = requests // refit_every if refit_every > 0 else 0
    refit_matrices = mutation_trace(
        dataset.observations, n_refits, mutate_frac, seed=seed + 1
    )
    checkpointer = None
    if checkpoint_dir is not None:
        from repro.persist import Checkpointer

        # Armed while the injector is live: persist faults can land in
        # this begin() (snapshot 0) and in every append below -- the
        # checkpointer's absorb-and-degrade policy is under test too.
        checkpointer = Checkpointer(
            Path(checkpoint_dir), snapshot_every=snapshot_every
        )
        checkpointer.begin(session, dataset.observations, dataset.labels)
    frontend = AsyncServingFrontend(
        session,
        max_queue_depth=max_queue_depth,
        max_inflight_bytes=max_inflight_bytes,
        max_batch_requests=max_batch_requests,
        default_latency_budget=latency_budget,
        batch_cutoff=batch_cutoff,
        fixed_window_seconds=fixed_window_seconds,
        checkpointer=checkpointer,
        retry_policy=RetryPolicy(max_retries=max_retries, jitter_seed=seed),
        scoring_timeout=scoring_timeout,
        breaker_threshold=breaker_threshold,
        breaker_cooldown=breaker_cooldown,
        breaker_policy=breaker_policy,
    )
    results: list[Optional[Any]] = [None] * requests
    errors: "dict[int, BaseException]" = {}
    applied_refits: list[ObservationMatrix] = []
    shed = 0
    refit_failures = 0

    async def _run() -> float:
        nonlocal shed, refit_failures
        async with frontend:
            loop = asyncio.get_running_loop()
            start = loop.time()

            async def fire(k: int, matrix: ObservationMatrix) -> None:
                nonlocal shed
                scheduled = start + k / rate_qps
                delay = scheduled - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                try:
                    results[k] = await frontend.submit_detailed(
                        matrix, latency_budget=latency_budget
                    )
                except Overloaded:
                    shed += 1
                except Exception as error:  # fault-barrier: a typed per-request failure is a legal chaos outcome; record it for the accounting check
                    errors[k] = error

            async def refit_at(g: int, matrix: ObservationMatrix) -> None:
                nonlocal refit_failures
                scheduled = start + (g + 1) * refit_every / rate_qps
                delay = scheduled - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                try:
                    await frontend.refit(
                        matrix, dataset.labels, mode=refit_mode
                    )
                except Exception:  # fault-barrier: an injected refit fault must roll back, not abort the replay
                    refit_failures += 1
                else:
                    applied_refits.append(matrix)

            tasks = [
                asyncio.ensure_future(fire(k, matrix))
                for k, matrix in enumerate(trace)
            ]
            tasks.extend(
                asyncio.ensure_future(refit_at(g, matrix))
                for g, matrix in enumerate(refit_matrices)
            )
            gathered = asyncio.gather(*tasks)
            try:
                await asyncio.wait_for(gathered, timeout=max_seconds)
            except asyncio.TimeoutError:
                for task in tasks:
                    task.cancel()
                raise RuntimeError(
                    "chaos accounting violation: replay did not terminate "
                    f"within {max_seconds}s (possible hang) under fault "
                    f"plan {effective_spec!r}"
                ) from None
            return loop.time() - start

    try:
        duration = asyncio.run(_run())
    except BaseException:
        if checkpointer is not None:
            checkpointer.close()
        session.close()
        raise
    finally:
        # Freeze fault accounting and disarm injection before the twin
        # phase: verification sessions must run fault-free.
        fault_stats = injector.stats
        if owned:
            faults.uninstall()
    admission_stats = dict(frontend.stats["admission"])
    resilience_stats = dict(frontend.stats["resilience"])
    pool_stats = dict(session.cache_stats().get("pool", {}))
    checkpoint_stats: Mapping = {}
    if checkpointer is not None:
        checkpoint_stats = checkpointer.stats
        checkpointer.close()
        session.attach_checkpointer(None)
    # Bit-identity oracle, as in run_serving_load: one fault-free
    # delta-off twin per generation that actually served traffic.
    fit_inputs = [dataset.observations] + applied_refits
    twins: "dict[int, ScoringSession]" = {}
    max_abs_diff = 0.0
    try:
        for k, result in enumerate(results):
            if result is None:
                continue
            generation = int(result.generation)
            twin = twins.get(generation)
            if twin is None:
                twin = ScoringSession(
                    fit_inputs[generation],
                    dataset.labels,
                    method=method,
                    workers=workers,
                    delta="off",
                    micro_batch="off",
                    **options,
                )
                twins[generation] = twin
            direct = twin.score(trace[k])
            if len(result.scores):
                diff = float(np.abs(result.scores - direct).max())
                max_abs_diff = max(max_abs_diff, diff)
    finally:
        for twin in twins.values():
            twin.close()
        session.close()
    completed = sum(1 for result in results if result is not None)
    failed = len(errors)
    report = ServingChaosReport(
        method=method,
        fault_spec=effective_spec,
        rate_qps=float(rate_qps),
        requests=requests,
        completed=completed,
        shed=shed,
        failed=failed,
        refit_attempts=n_refits,
        refit_failures=refit_failures,
        refits=int(frontend.stats["refits"]),
        duration_seconds=float(duration),
        max_abs_diff=max_abs_diff,
        retries=int(resilience_stats["retries"]),
        degraded_batches=int(resilience_stats["degraded_batches"]),
        forced_degrades=int(resilience_stats["forced_degrades"]),
        admission_depth_after=int(admission_stats["depth"]),
        admission_inflight_bytes_after=int(admission_stats["inflight_bytes"]),
        fault_stats=fault_stats,
        pool_stats=pool_stats,
        admission_stats=admission_stats,
        resilience_stats=resilience_stats,
        checkpoint_stats=checkpoint_stats,
    )
    if report.terminated != requests:
        raise RuntimeError(
            "chaos accounting violation: "
            f"completed({completed}) + shed({shed}) + failed({failed}) "
            f"!= requests({requests}) under fault plan {effective_spec!r}"
        )
    if report.admission_depth_after or report.admission_inflight_bytes_after:
        raise RuntimeError(
            "chaos admission leak: after drain depth="
            f"{report.admission_depth_after}, inflight_bytes="
            f"{report.admission_inflight_bytes_after} (both must be 0) "
            f"under fault plan {effective_spec!r}"
        )
    if max_abs_diff != 0.0:
        raise RuntimeError(
            "chaos bit-identity violation: max |served - cold twin| = "
            f"{max_abs_diff!r} (must be exactly 0.0) under fault plan "
            f"{effective_spec!r}"
        )
    return report


# ----------------------------------------------------------------------
# Standard method line-ups
# ----------------------------------------------------------------------


def supervised_spec(
    name: str,
    method: str,
    prior: Optional[float] = None,
    smoothing: float = 0.0,
    decision_prior: Optional[float] = 0.5,
    engine: str = "vectorized",
    **options: Any,
) -> MethodSpec:
    """Spec for a model-based fuser calibrated on the dataset's labels.

    ``prior=None`` estimates ``alpha`` from the labels for the quality
    model; ``decision_prior=0.5`` fixes the posterior's ``alpha`` the way
    the paper's Section 5 protocol does ("we set alpha = 0.5").  ``engine``
    selects the execution engine for both model fitting and scoring.
    """

    def build(dataset: FusionDataset) -> TruthFuser:
        model = fit_model(
            dataset.observations,
            dataset.labels,
            prior=prior,
            smoothing=smoothing,
            engine=engine,
        )
        fuser = make_fuser(
            method, model, decision_prior=decision_prior, engine=engine, **options
        )
        fuser.name = name
        return fuser

    return MethodSpec(name=name, build=build)


def paper_method_specs(
    prior: Optional[float] = None,
    smoothing: float = 0.0,
    decision_prior: Optional[float] = 0.5,
    ltm_iterations: int = 60,
    ltm_burn_in: int = 10,
    ltm_seed: int = 7,
    estimates_iterations: int = 20,
    corr_options: Optional[Mapping] = None,
    engine: str = "vectorized",
) -> list[MethodSpec]:
    """The seven methods of the paper's main comparison (Figure 4).

    UNION-25/50/75, 3-Estimates, LTM, PrecRec, and PrecRecCorr -- the last
    automatically switches from the exact solver to the clustered one on
    wide source sets, mirroring the paper's BOOK treatment.
    """
    corr_options = dict(corr_options or {})
    return [
        MethodSpec("Union-25", lambda ds: UnionKFuser(25)),
        MethodSpec("Union-50", lambda ds: UnionKFuser(50)),
        MethodSpec("Union-75", lambda ds: UnionKFuser(75)),
        MethodSpec(
            "3-Estimates",
            lambda ds: ThreeEstimatesFuser(iterations=estimates_iterations),
        ),
        MethodSpec(
            "LTM",
            lambda ds: LatentTruthModel(
                iterations=ltm_iterations,
                burn_in=min(ltm_burn_in, max(ltm_iterations // 2, 1)),
                seed=ltm_seed,
            ),
        ),
        supervised_spec(
            "PrecRec", "precrec",
            prior=prior, smoothing=smoothing, decision_prior=decision_prior,
            engine=engine,
        ),
        supervised_spec(
            "PrecRecCorr", "precreccorr",
            prior=prior, smoothing=smoothing, decision_prior=decision_prior,
            engine=engine,
            **corr_options,
        ),
    ]


# ----------------------------------------------------------------------
# Repetition sweeps (Figures 6 and 7)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """Mean +/- std of each method's F1 at one sweep configuration."""

    label: str
    mean_f1: Mapping[str, float]
    std_f1: Mapping[str, float]


def sweep_f1(
    label: str,
    dataset_factory: Callable[[int], FusionDataset],
    specs: Sequence[MethodSpec],
    repetitions: int = 10,
    base_seed: int = 0,
) -> SweepPoint:
    """Average each method's F1 over ``repetitions`` generated datasets."""
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    per_method: dict[str, list[float]] = {spec.name: [] for spec in specs}
    for rep in range(repetitions):
        dataset = dataset_factory(base_seed + rep)
        for spec in specs:
            evaluation = run_method(dataset, spec)
            per_method[spec.name].append(evaluation.f1)
    return SweepPoint(
        label=label,
        mean_f1={name: float(np.mean(v)) for name, v in per_method.items()},
        std_f1={name: float(np.std(v)) for name, v in per_method.items()},
    )


def run_sweep(
    points: Iterable[tuple[str, Callable[[int], FusionDataset]]],
    specs: Sequence[MethodSpec],
    repetitions: int = 10,
    base_seed: int = 0,
) -> list[SweepPoint]:
    """Run :func:`sweep_f1` for each labelled dataset factory."""
    return [
        sweep_f1(label, factory, specs, repetitions=repetitions, base_seed=base_seed)
        for label, factory in points
    ]
