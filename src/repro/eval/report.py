"""Plain-text report rendering for experiments and benchmarks.

Benchmarks regenerate the paper's tables and figure series as text: aligned
ASCII tables for the metric/runtime tables and coordinate listings for the
curves.  Everything here is presentation only -- no numbers are computed in
this module.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.eval.harness import Comparison, SweepPoint
from repro.eval.metrics import Curve


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_digits: int = 3,
) -> str:
    """Render an aligned ASCII table; floats are rounded uniformly."""
    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return f"{cell:.{float_digits}f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[k]) for k, cell in enumerate(cells))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def comparison_table(comparison: Comparison, include_timing: bool = True) -> str:
    """Figure-4-style table: method x (precision, recall, F1, AUCs[, time])."""
    headers = ["method", "precision", "recall", "F1", "AUC-PR", "AUC-ROC"]
    if include_timing:
        headers.append("time(s)")
    rows = []
    for e in comparison.evaluations:
        row: list[object] = [
            e.method, e.precision, e.recall, e.f1, e.auc_pr, e.auc_roc,
        ]
        if include_timing:
            row.append(e.elapsed_seconds)
        rows.append(row)
    title = comparison.dataset.summary()
    return f"{title}\n{format_table(headers, rows)}"


def runtime_table(comparisons: Mapping[str, Comparison]) -> str:
    """Figure-5b-style table: rows = methods, columns = datasets, cells = s."""
    dataset_names = list(comparisons.keys())
    methods: list[str] = []
    for comparison in comparisons.values():
        for name in comparison.methods:
            if name not in methods:
                methods.append(name)
    headers = ["time(sec)"] + dataset_names
    rows = []
    for method in methods:
        row: list[object] = [method]
        for name in dataset_names:
            try:
                row.append(comparisons[name][method].elapsed_seconds)
            except KeyError:
                row.append("-")
        rows.append(row)
    return format_table(headers, rows)


def sweep_table(points: Sequence[SweepPoint], methods: Sequence[str]) -> str:
    """Figure-6/7-style series: rows = sweep points, columns = method F1."""
    headers = ["config"] + list(methods)
    rows = []
    for point in points:
        rows.append([point.label] + [point.mean_f1.get(m, float("nan")) for m in methods])
    return format_table(headers, rows)


def curve_points(curve: Curve, max_points: int = 20) -> str:
    """A downsampled ``x,y`` listing of a PR or ROC curve."""
    n = curve.x.size
    if n <= max_points:
        idx = range(n)
    else:
        step = (n - 1) / (max_points - 1)
        idx = sorted({int(round(k * step)) for k in range(max_points)})
    pts = ", ".join(f"({curve.x[i]:.2f},{curve.y[i]:.2f})" for i in idx)
    return f"[{pts}] area={curve.area:.3f}"


def quality_scatter(
    names: Sequence[str],
    precisions: Sequence[float],
    recalls: Sequence[float],
    max_rows: Optional[int] = 15,
) -> str:
    """The Section 5 dataset profile: per-source precision/recall listing."""
    rows = list(zip(names, precisions, recalls))
    clipped = rows if max_rows is None or len(rows) <= max_rows else rows[:max_rows]
    table = format_table(["source", "precision", "recall"], clipped)
    if len(rows) > len(clipped):
        table += f"\n... ({len(rows) - len(clipped)} more sources)"
    return table
