"""Datasets: the motivating example, synthetic generators, and simulators
of the paper's three real-world datasets (REVERB, RESTAURANT, BOOK).

The three "real" datasets are statistical simulators matching every
characteristic the paper publishes (source counts, gold composition,
quality bands, correlation structure); see DESIGN.md's substitution table.
"""

from repro.data.book import book_dataset
from repro.data.crowd import CrowdLabelReport, crowd_labels
from repro.data.extraction import (
    Corpus,
    ExtractorSpec,
    Pattern,
    build_corpus,
    run_extractors,
)
from repro.data.figure1 import (
    example_parameter_model,
    example_source_qualities,
    figure1_dataset,
    triple_column,
)
from repro.data.io import load_dataset, save_dataset
from repro.data.model import FusionDataset
from repro.data.registry import available_datasets, get_dataset
from repro.data.restaurant import restaurant_dataset
from repro.data.reverb import reverb_dataset
from repro.data.synthetic import (
    CorrelationGroup,
    SourceSpec,
    SyntheticConfig,
    generate,
    trim_to_counts,
    uniform_sources,
)

__all__ = [
    "Corpus",
    "available_datasets",
    "get_dataset",
    "CorrelationGroup",
    "CrowdLabelReport",
    "ExtractorSpec",
    "FusionDataset",
    "Pattern",
    "SourceSpec",
    "SyntheticConfig",
    "book_dataset",
    "build_corpus",
    "crowd_labels",
    "example_parameter_model",
    "example_source_qualities",
    "figure1_dataset",
    "generate",
    "load_dataset",
    "restaurant_dataset",
    "reverb_dataset",
    "run_extractors",
    "save_dataset",
    "trim_to_counts",
    "triple_column",
    "uniform_sources",
]
