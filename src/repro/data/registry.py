"""Named dataset registry: one string gets you any benchmark dataset.

Used by the CLI and handy in notebooks::

    from repro.data.registry import get_dataset
    dataset = get_dataset("reverb", seed=11)
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.data.book import book_dataset
from repro.data.figure1 import figure1_dataset
from repro.data.model import FusionDataset
from repro.data.restaurant import restaurant_dataset
from repro.data.reverb import reverb_dataset
from repro.data.synthetic import (
    CorrelationGroup,
    SyntheticConfig,
    generate,
    uniform_sources,
)
from repro.util.rng import RngLike


def _figure1(seed: RngLike = None, **_: Any) -> FusionDataset:
    return figure1_dataset()  # deterministic; seed ignored


def _synthetic_independent(seed: RngLike = 0, **kwargs: Any) -> FusionDataset:
    config = SyntheticConfig(
        sources=uniform_sources(
            kwargs.get("n_sources", 5),
            kwargs.get("precision", 0.75),
            kwargs.get("recall", 0.5),
        ),
        n_triples=kwargs.get("n_triples", 1000),
        true_fraction=kwargs.get("true_fraction", 0.5),
        name="synthetic-independent",
    )
    return generate(config, seed=seed)


def _synthetic_correlated(seed: RngLike = 0, **kwargs: Any) -> FusionDataset:
    config = SyntheticConfig(
        sources=uniform_sources(
            kwargs.get("n_sources", 5),
            kwargs.get("precision", 0.6),
            kwargs.get("recall", 0.4),
        ),
        n_triples=kwargs.get("n_triples", 1000),
        true_fraction=kwargs.get("true_fraction", 0.5),
        groups=(
            CorrelationGroup(members=(0, 1, 2, 3), mode="overlap_true",
                             strength=0.9),
        ),
        name="synthetic-correlated",
    )
    return generate(config, seed=seed)


def _synthetic_wide(seed: RngLike = 17, **kwargs: Any) -> FusionDataset:
    """The chaos/serving benchmark workload: enough sources that request
    windows span multiple 64-aligned pattern shards, so sharded scoring
    (and worker-site fault schedules) actually dispatch to the pool."""
    config = SyntheticConfig(
        sources=uniform_sources(
            kwargs.get("n_sources", 8),
            kwargs.get("precision", 0.65),
            kwargs.get("recall", 0.45),
        ),
        n_triples=kwargs.get("n_triples", 960),
        true_fraction=kwargs.get("true_fraction", 0.5),
        groups=(
            CorrelationGroup(members=(0, 1, 2), mode="overlap_true",
                             strength=0.85),
        ),
        name="synthetic-wide",
    )
    return generate(config, seed=seed)


_REGISTRY: Mapping[str, Callable[..., FusionDataset]] = {
    "figure1": _figure1,
    "reverb": reverb_dataset,
    "restaurant": restaurant_dataset,
    "book": book_dataset,
    "synthetic-independent": _synthetic_independent,
    "synthetic-correlated": _synthetic_correlated,
    "synthetic-wide": _synthetic_wide,
}

#: Default seeds matching the benchmark suite, so `get_dataset("reverb")`
#: reproduces exactly the dataset the benches report on.
_DEFAULT_SEEDS = {
    "reverb": 11,
    "restaurant": 23,
    "book": 42,
    "synthetic-independent": 0,
    "synthetic-correlated": 0,
    "synthetic-wide": 17,
}


def available_datasets() -> tuple[str, ...]:
    """Registered dataset names."""
    return tuple(sorted(_REGISTRY))


def get_dataset(
    name: str, seed: RngLike = None, **kwargs: Any
) -> FusionDataset:
    """Build a registered dataset by name.

    ``seed`` defaults to the benchmark suite's canonical seed for that
    dataset; extra keyword arguments are forwarded to the factory (the
    synthetic entries accept ``n_sources`` / ``precision`` / ``recall`` /
    ``n_triples`` / ``true_fraction``).
    """
    key = name.lower()
    factory = _REGISTRY.get(key)
    if factory is None:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    if seed is None:
        seed = _DEFAULT_SEEDS.get(key)
    return factory(seed=seed, **kwargs)
