"""Extraction-pipeline simulator: pages -> sentences -> extractors -> triples.

The paper's motivating scenario (Sections 1-2) is knowledge extraction: a
corpus of Web sentences is processed by several extraction systems, each
implementing a set of *patterns*; extractors that share patterns produce
correlated output ("extractors may apply common rules in extraction --
positive correlation, without copying"), and extractors focusing on
different parts of a page produce complementary output (negative
correlation).  This module builds that mechanism explicitly, and the
REVERB simulator and the knowledge-extraction example run on top of it.

Model
-----
- A corpus has ``n_sentences`` sentences.  Each sentence carries one
  candidate fact; with probability ``fact_rate`` the sentence genuinely
  states it (the extracted triple would be *true*), otherwise the sentence
  is misleading (e.g. refers to a different entity) and extraction from it
  yields a *false* triple.  Whether a sentence misleads is a property of the
  sentence, so different extractors misreading it make the *same* mistake --
  exactly how t2 in Figure 1 is produced by both S1 and S2.
- Each sentence has a *shape* (one of ``n_shapes`` syntactic forms).
- A :class:`Pattern` fires on sentences of its shape with probability
  ``hit_rate``, **deterministically per (pattern, sentence)**: two
  extractors sharing a pattern decide identically, which yields positive
  correlation without copying.
- An :class:`ExtractorSpec` is a named set of patterns; its output is the
  union of its patterns' extractions.

Gold truth follows Example 2.1: a triple is correct iff the sentence really
provides it -- the corpus is the "real world" against which extractors are
judged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.observations import ObservationMatrix
from repro.core.triples import Triple, TripleIndex
from repro.data.model import FusionDataset
from repro.util.rng import RngLike, ensure_rng
from repro.util.validation import check_fraction, check_positive_int

_PREDICATES = (
    "profession",
    "born in",
    "spouse",
    "works at",
    "located in",
    "author of",
    "plays for",
    "capital of",
)


@dataclass(frozen=True)
class Pattern:
    """One extraction rule.

    Attributes
    ----------
    shape:
        The sentence shape this pattern applies to.
    hit_rate:
        Probability the pattern fires on a *truthful* sentence of its shape
        (decided once per (pattern, sentence) -- shared by every extractor
        that implements the pattern).
    susceptibility:
        Multiplier on ``hit_rate`` for *misleading* sentences: a careful
        pattern (low susceptibility) notices the mismatch and stays quiet,
        a sloppy one (susceptibility near 1) extracts the false triple
        anyway.  This is what gives patterns -- and hence extractors --
        different precision.
    """

    shape: int
    hit_rate: float = 0.8
    susceptibility: float = 0.5

    def __post_init__(self) -> None:
        if self.shape < 0:
            raise ValueError(f"shape must be non-negative, got {self.shape}")
        check_fraction(self.hit_rate, "hit_rate")
        if not 0.0 <= self.susceptibility <= 1.0:
            raise ValueError(
                f"susceptibility must be in [0, 1], got {self.susceptibility}"
            )


@dataclass(frozen=True)
class ExtractorSpec:
    """A named extraction system: the set of pattern ids it implements."""

    name: str
    patterns: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.patterns:
            raise ValueError(f"extractor {self.name} has no patterns")


@dataclass(frozen=True)
class Corpus:
    """A simulated sentence corpus.

    Attributes
    ----------
    shapes:
        Sentence shape per sentence.
    truthful:
        Whether each sentence genuinely states its candidate fact.
    triples:
        The candidate triple carried by each sentence.
    """

    shapes: np.ndarray
    truthful: np.ndarray
    triples: tuple[Triple, ...]

    @property
    def n_sentences(self) -> int:
        return self.shapes.size


def build_corpus(
    n_sentences: int,
    n_shapes: int = 6,
    fact_rate: float = 0.6,
    seed: RngLike = None,
    n_pages: int = 50,
) -> Corpus:
    """Sample a corpus of candidate-fact sentences.

    Every sentence yields a distinct triple whose subject names the page it
    came from (``page<k>/entity<j>``), so the triple's default domain groups
    sentences by page -- useful for scope experiments.
    """
    check_positive_int(n_sentences, "n_sentences")
    check_positive_int(n_shapes, "n_shapes")
    check_positive_int(n_pages, "n_pages")
    check_fraction(fact_rate, "fact_rate")
    rng = ensure_rng(seed)
    shapes = rng.integers(0, n_shapes, size=n_sentences)
    truthful = rng.random(n_sentences) < fact_rate
    pages = rng.integers(0, n_pages, size=n_sentences)
    triples = []
    for s in range(n_sentences):
        marker = "fact" if truthful[s] else "error"
        triples.append(
            Triple(
                subject=f"entity{s}",
                predicate=str(_PREDICATES[s % len(_PREDICATES)]),
                obj=f"{marker}-value-{s}",
                domain=f"page{pages[s]}",
            )
        )
    return Corpus(shapes=shapes, truthful=truthful, triples=tuple(triples))


def run_extractors(
    corpus: Corpus,
    patterns: Sequence[Pattern],
    extractors: Sequence[ExtractorSpec],
    seed: RngLike = None,
    name: str = "extraction",
    scope_by_shape: bool = True,
) -> FusionDataset:
    """Execute every extractor over the corpus and assemble a dataset.

    Pattern firings are sampled once per (pattern, sentence) so extractors
    sharing a pattern agree exactly on where it fires; an extractor outputs
    the triple of every sentence where at least one of its patterns fired.
    Sentences extracted by nobody are dropped (they are outside ``O``).

    With ``scope_by_shape`` (default), an extractor *covers* exactly the
    sentences whose shape one of its patterns handles -- it cannot extract
    anything else, so its silence there is uninformative (the paper's scope
    rule: an Infobox extractor is not penalised for missing facts that only
    appear in free text).  Disable for a flat, full-coverage matrix.
    """
    for spec in extractors:
        for pid in spec.patterns:
            if not 0 <= pid < len(patterns):
                raise ValueError(
                    f"extractor {spec.name} references unknown pattern {pid}"
                )
    rng = ensure_rng(seed)
    n_patterns = len(patterns)
    n_sentences = corpus.n_sentences
    # firings[k, s]: pattern k fires on sentence s (shape matches + hit roll,
    # with the roll's bar lowered on misleading sentences by susceptibility).
    firings = np.zeros((n_patterns, n_sentences), dtype=bool)
    for k, pattern in enumerate(patterns):
        matches = corpus.shapes == pattern.shape
        fire_probability = np.where(
            corpus.truthful,
            pattern.hit_rate,
            pattern.hit_rate * pattern.susceptibility,
        )
        rolls = rng.random(n_sentences) < fire_probability
        firings[k] = matches & rolls

    provides = np.zeros((len(extractors), n_sentences), dtype=bool)
    coverage = np.zeros((len(extractors), n_sentences), dtype=bool)
    for row, spec in enumerate(extractors):
        for pid in spec.patterns:
            provides[row] |= firings[pid]
            coverage[row] |= corpus.shapes == patterns[pid].shape
    if not scope_by_shape:
        coverage = np.ones_like(provides)

    keep = provides.any(axis=0)
    kept_ids = np.flatnonzero(keep)
    index = TripleIndex(corpus.triples[int(s)] for s in kept_ids)
    matrix = ObservationMatrix(
        provides[:, keep],
        [spec.name for spec in extractors],
        triple_index=index,
        coverage=coverage[:, keep],
    )
    return FusionDataset(
        name=name,
        observations=matrix,
        labels=corpus.truthful[keep],
        description=(
            f"simulated extraction: {len(extractors)} extractors, "
            f"{n_patterns} patterns, {int(keep.sum())} extracted triples"
        ),
        metadata={
            "n_sentences": n_sentences,
            "n_patterns": n_patterns,
            "pattern_shapes": tuple(p.shape for p in patterns),
            "extractor_patterns": {
                spec.name: spec.patterns for spec in extractors
            },
        },
    )
