"""Crowdsourced gold-labelling simulator.

The RESTAURANT gold standard was "selected by majority vote over 10
Mechanical Turk responses" [17], and the paper notes that crowdsourcing
platforms "greatly facilitate the labeling process" for training data
(Section 3.2).  This module simulates that pipeline: independent workers
with configurable accuracy label each triple, and the majority becomes the
training label.  It lets experiments quantify how label noise in the
training set propagates into fusion quality (one of the ablation benches).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import RngLike, ensure_rng
from repro.util.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class CrowdLabelReport:
    """Outcome of a simulated crowd-labelling round."""

    labels: np.ndarray
    votes_true: np.ndarray
    n_workers: int
    worker_accuracy: float

    @property
    def agreement(self) -> np.ndarray:
        """Per-triple fraction of workers agreeing with the majority."""
        frac = self.votes_true / self.n_workers
        return np.maximum(frac, 1.0 - frac)

    def error_rate(self, truth: np.ndarray) -> float:
        """Fraction of majority labels that disagree with the real truth."""
        truth = np.asarray(truth, dtype=bool)
        return float(np.mean(self.labels != truth))


def crowd_labels(
    truth: np.ndarray,
    n_workers: int = 10,
    worker_accuracy: float = 0.9,
    seed: RngLike = None,
) -> CrowdLabelReport:
    """Simulate majority-vote labelling of ``truth`` by noisy workers.

    Each of ``n_workers`` workers independently reports each triple's truth
    correctly with probability ``worker_accuracy``; the majority label wins
    (ties break toward ``True``, matching "accept when at least half agree").
    """
    check_positive_int(n_workers, "n_workers")
    check_fraction(worker_accuracy, "worker_accuracy")
    truth = np.asarray(truth, dtype=bool)
    rng = ensure_rng(seed)
    correct = rng.random((n_workers, truth.size)) < worker_accuracy
    worker_says_true = np.where(correct, truth[None, :], ~truth[None, :])
    votes_true = worker_says_true.sum(axis=0)
    labels = votes_true >= (n_workers + 1) // 2
    return CrowdLabelReport(
        labels=labels,
        votes_true=votes_true,
        n_workers=n_workers,
        worker_accuracy=worker_accuracy,
    )
