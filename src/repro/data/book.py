"""BOOK-like dataset simulator (abebooks.com book/author triples).

The paper's BOOK dataset [6] was crawled from abebooks.com: 879 seller
sources and 5900 book-author triples, with a gold standard of 225 books for
which 482 authors are correctly and 935 wrongly provided; 333 sources
provide gold-standard triples.  The crawl is not redistributable, so this
module simulates the gold-standard portion with the published
characteristics:

- 333 seller sources with *large variation in precision* and mostly *low
  recall* (each seller lists few of the gold books);
- multiple true authors per book (the multi-truth setting motivating the
  paper's open-world semantics) and a larger pool of wrong authors
  (misspellings, missing co-authors, wrong attributions);
- gold standard of exactly 482 true / 935 false author triples;
- the correlation-cluster structure the paper discovers (Section 5.1):
  clusters of sizes {22, 3, 2} on true triples and {22, 3, 2, 2} on false
  triples, where only one 2-cluster (a copying pair) is shared between the
  two sides -- "the clusters for true triples and for false triples contain
  very different sources".

Triples carry ``{book, author, value}`` semantics, so the single-truth
AccuCopy baseline can group candidate authors per book, which is how the
paper's copy-detection comparison on BOOK is reproduced.
"""

from __future__ import annotations

import numpy as np

from repro.core.observations import ObservationMatrix
from repro.core.triples import Triple, TripleIndex
from repro.data.model import FusionDataset
from repro.data.synthetic import mirror_copy, share_template, trim_to_counts
from repro.util.rng import RngLike, ensure_rng
from repro.util.validation import check_positive_int

#: Published gold-standard composition [6] / paper Section 5.
GOLD_TRUE = 482
GOLD_FALSE = 935
N_GOLD_SOURCES = 333
N_GOLD_BOOKS = 225

#: Correlated source groups (ids into the seller list); sizes follow the
#: clusters the paper discovers.  The copy pair is correlated on both sides.
TRUE_OVERLAP_LARGE = tuple(range(0, 22))
TRUE_OVERLAP_SMALL = (22, 23, 24)
COPY_PAIR = (25, 26)
FALSE_OVERLAP_LARGE = tuple(range(27, 49))
FALSE_OVERLAP_SMALL = (49, 50, 51)
FALSE_OVERLAP_PAIR = (52, 53)


def book_dataset(
    seed: RngLike = 42,
    n_sources: int = N_GOLD_SOURCES,
    n_books: int = N_GOLD_BOOKS,
    gold_true: int = GOLD_TRUE,
    gold_false: int = GOLD_FALSE,
    group_strength: float = 0.9,
) -> FusionDataset:
    """Generate a BOOK-like dataset with the published gold composition.

    Smaller ``n_sources`` / ``n_books`` (with proportionally smaller gold
    counts) produce quick variants for tests.
    """
    check_positive_int(n_sources, "n_sources")
    check_positive_int(n_books, "n_books")
    if n_sources < 54:
        raise ValueError(
            "book simulator needs >= 54 sources to host its correlation "
            f"groups, got {n_sources}"
        )
    rng = ensure_rng(seed)

    # --- books and candidate author values -------------------------------
    # Pool sizes are ~10% above the gold targets; provider-less candidates
    # are dropped and the rest trimmed down to the exact published counts.
    true_per_book = _sizes_for_total(
        n_books, int(gold_true * 1.12), minimum=1, mean=2.3, rng=rng
    )
    false_per_book = _sizes_for_total(
        n_books, int(gold_false * 1.12), minimum=2, mean=4.7, rng=rng
    )
    triples: list[Triple] = []
    labels_list: list[bool] = []
    for b in range(n_books):
        for k in range(true_per_book[b]):
            triples.append(Triple(f"book{b:03d}", "author", f"author-{b}-{k}"))
            labels_list.append(True)
        for k in range(false_per_book[b]):
            triples.append(
                Triple(f"book{b:03d}", "author", f"wrong-author-{b}-{k}")
            )
            labels_list.append(False)
    labels = np.array(labels_list, dtype=bool)
    n_true = int(labels.sum())
    n_false = int(labels.size - n_true)
    true_ids = np.flatnonzero(labels)
    false_ids = np.flatnonzero(~labels)

    # --- seller quality: precision varies widely, recall is low ----------
    precisions = np.clip(0.15 + 0.80 * rng.beta(2.0, 2.0, size=n_sources), 0.15, 0.95)
    recalls = np.clip(rng.beta(1.4, 11.0, size=n_sources) * 1.1, 0.015, 0.40)
    # Members of the error-sharing cliques are *individually credible but
    # collectively redundant* sellers: moderate precision (so each vote
    # looks trustworthy in isolation -- the regime where agreement between
    # copiers fools independence-based fusion, Scenario 3 of Example 4.1)
    # with a meaningful error rate to share.  True-overlap members list
    # substantial catalogues (decent recall) so their correlation has
    # statistical support.
    ids = [i for i in FALSE_OVERLAP_LARGE if i < n_sources]
    precisions[ids] = np.clip(precisions[ids], 0.45, 0.65)
    recalls[ids] = np.clip(recalls[ids], 0.08, 0.40)
    # The small error cliques are sloppier sellers (lower precision -> a
    # higher error rate), which keeps their shared mistakes statistically
    # identifiable despite the cliques' small size.
    for clique in (FALSE_OVERLAP_SMALL, FALSE_OVERLAP_PAIR):
        ids = [i for i in clique if i < n_sources]
        precisions[ids] = np.clip(precisions[ids], 0.30, 0.45)
        recalls[ids] = np.clip(recalls[ids], 0.10, 0.40)
    for clique in (TRUE_OVERLAP_LARGE, TRUE_OVERLAP_SMALL, COPY_PAIR):
        ids = [i for i in clique if i < n_sources]
        recalls[ids] = np.clip(recalls[ids], 0.08, 0.40)
    ratio = n_true / n_false
    fprs = recalls * ratio * (1.0 - precisions) / precisions
    # Where the implied false rate is infeasible, lower recall to fit.
    over = fprs > 0.85
    recalls[over] = 0.85 / (ratio * (1.0 - precisions[over]) / precisions[over])
    fprs = np.minimum(recalls * ratio * (1.0 - precisions) / precisions, 0.85)

    provides = np.zeros((n_sources, labels.size), dtype=bool)
    for i in range(n_sources):
        provides[i, true_ids] = rng.random(n_true) < recalls[i]
        provides[i, false_ids] = rng.random(n_false) < fprs[i]

    # --- correlation cliques ---------------------------------------------
    share_template(
        provides, list(TRUE_OVERLAP_LARGE), true_ids,
        [recalls[i] for i in TRUE_OVERLAP_LARGE], group_strength, rng,
    )
    share_template(
        provides, list(TRUE_OVERLAP_SMALL), true_ids,
        [recalls[i] for i in TRUE_OVERLAP_SMALL], group_strength, rng,
    )
    mirror_copy(provides, list(COPY_PAIR), group_strength, rng)
    share_template(
        provides, list(FALSE_OVERLAP_LARGE), false_ids,
        [fprs[i] for i in FALSE_OVERLAP_LARGE], group_strength, rng,
    )
    share_template(
        provides, list(FALSE_OVERLAP_SMALL), false_ids,
        [fprs[i] for i in FALSE_OVERLAP_SMALL], group_strength, rng,
    )
    share_template(
        provides, list(FALSE_OVERLAP_PAIR), false_ids,
        [fprs[i] for i in FALSE_OVERLAP_PAIR], group_strength, rng,
    )

    # --- seller scopes: a seller covers exactly the books it lists --------
    # A seller that does not carry a book says nothing about its authors
    # (open-world scope, Section 2.2); only listing sellers' silence counts
    # against a candidate author.  Coverage is book-granular: providing any
    # author for a book covers all of that book's candidate authors.
    book_of = np.repeat(
        np.arange(n_books), np.asarray(true_per_book) + np.asarray(false_per_book)
    )
    coverage = np.zeros_like(provides)
    for i in range(n_sources):
        listed = np.unique(book_of[provides[i]])
        coverage[i] = np.isin(book_of, listed)

    # --- assemble, drop provider-less candidates, trim to gold counts ----
    keep = provides.any(axis=0)
    kept_ids = np.flatnonzero(keep)
    index = TripleIndex(triples[int(j)] for j in kept_ids)
    matrix = ObservationMatrix(
        provides[:, keep],
        [f"seller{i:03d}" for i in range(n_sources)],
        triple_index=index,
        coverage=coverage[:, keep],
    )
    dataset = FusionDataset(
        name="book",
        observations=matrix,
        labels=labels[keep],
        description=(
            f"BOOK-like simulation: {n_sources} seller sources, "
            f"{n_books} books, multi-truth author triples"
        ),
        metadata={
            "substitutes": "abebooks.com book-author dataset [6]",
            "paper_gold": (GOLD_TRUE, GOLD_FALSE),
            "true_clusters": (TRUE_OVERLAP_LARGE, TRUE_OVERLAP_SMALL, COPY_PAIR),
            "false_clusters": (
                FALSE_OVERLAP_LARGE,
                FALSE_OVERLAP_SMALL,
                FALSE_OVERLAP_PAIR,
                COPY_PAIR,
            ),
        },
    )
    return trim_to_counts(dataset, gold_true, gold_false, seed=rng)


def _sizes_for_total(
    n_groups: int,
    total: int,
    minimum: int,
    mean: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-group counts with a given minimum, roughly Poisson, summing to total."""
    sizes = minimum + rng.poisson(max(mean - minimum, 0.1), size=n_groups)
    # Adjust the largest/smallest entries until the sum hits the target.
    diff = total - int(sizes.sum())
    step = 1 if diff > 0 else -1
    guard = 0
    while diff != 0 and guard < 10 * abs(total):
        j = int(rng.integers(0, n_groups))
        if step < 0 and sizes[j] <= minimum:
            guard += 1
            continue
        sizes[j] += step
        diff -= step
        guard += 1
    return sizes
