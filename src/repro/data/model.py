"""The dataset container shared by experiments, tests, and benchmarks.

A :class:`FusionDataset` bundles an observation matrix with its gold
standard: one boolean label per triple.  Following the paper's protocol
(Section 5), the gold standard doubles as the training set from which
quality and correlation parameters are measured, though the harness also
supports calibrating on a split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from repro.core.observations import ObservationMatrix


@dataclass(frozen=True)
class FusionDataset:
    """An observation matrix plus gold labels and descriptive metadata.

    Attributes
    ----------
    name:
        Short identifier (``"reverb"``, ``"figure1"``...).
    observations:
        The sources-by-triples matrix.
    labels:
        Gold truth per triple; ``labels[j]`` is ``True`` iff triple ``j`` is
        correct.
    description:
        One-line human description for reports.
    metadata:
        Free-form extras (generator parameters, provenance notes).
    """

    name: str
    observations: ObservationMatrix
    labels: np.ndarray
    description: str = ""
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels, dtype=bool)
        if labels.shape != (self.observations.n_triples,):
            raise ValueError(
                f"labels shape {labels.shape} != "
                f"({self.observations.n_triples},)"
            )
        object.__setattr__(self, "labels", labels)

    @property
    def n_sources(self) -> int:
        return self.observations.n_sources

    @property
    def n_triples(self) -> int:
        return self.observations.n_triples

    @property
    def n_true(self) -> int:
        return int(self.labels.sum())

    @property
    def n_false(self) -> int:
        return int((~self.labels).sum())

    @property
    def true_fraction(self) -> float:
        if self.labels.size == 0:
            return 0.0
        return self.n_true / self.labels.size

    def train_test_split(
        self, train_fraction: float, seed: Optional[int] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Random boolean masks ``(train, test)`` partitioning the triples.

        Stratified by label so both halves keep the dataset's truth ratio.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        rng = np.random.default_rng(seed)
        train = np.zeros(self.n_triples, dtype=bool)
        for label_value in (True, False):
            pool = np.flatnonzero(self.labels == label_value)
            n_train = int(round(train_fraction * pool.size))
            chosen = rng.choice(pool, size=n_train, replace=False)
            train[chosen] = True
        return train, ~train

    def summary(self) -> str:
        """One-line dataset profile for logs and reports."""
        return (
            f"{self.name}: {self.n_sources} sources, {self.n_triples} triples "
            f"({self.n_true} true / {self.n_false} false)"
        )
