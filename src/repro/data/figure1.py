"""The paper's motivating example: Figure 1 (the Barack Obama page).

Five extractors (S1..S5) process the Wikipedia page for Barack Obama and
produce ten knowledge triples, six of which are correct.  The exact
observation matrix is reconstructed from the paper's stated facts:

- ``O1 = {t1, t2, t6, t7, t8, t9, t10}`` (Example 2.1);
- t2 is provided by exactly S1 and S2; t3 by S3 alone (Example 1.1);
- ``O1 and O3 = {t7, t10}``; ``O1 and O4 and O5 = {t1, t6, t8, t9, t10}``
  (Example 2.3); t8 is provided by ``{S1, S2, S4, S5}`` (Example 4.4);
- every per-source and joint precision/recall in Figure 1b, and the per-row
  provider counts in Figure 1a, pin down the remaining cells uniquely.

The resulting matrix reproduces Figure 1b *exactly* (asserted in the tests):
e.g. ``p1 = 4/7``, ``r1 = 4/6``, joint precision of ``{S1, S3}`` = 1.

This module also exposes the *hypothetical* joint parameters the paper uses
in its worked Examples 4.4 / 4.7 / 4.10 and Figure 3; those numbers are
given by the authors ("here we assume that all the joint recall and joint
false positive rate parameters are given") rather than measured, so they
live in :func:`example_parameter_model` instead of the dataset itself.
"""

from __future__ import annotations

import numpy as np

from repro.core.joint import ExplicitJointModel
from repro.core.observations import ObservationMatrix
from repro.core.quality import SourceQuality
from repro.core.triples import Triple, TripleIndex
from repro.data.model import FusionDataset

SOURCE_NAMES = ("S1", "S2", "S3", "S4", "S5")

#: The ten triples of Figure 1a, in order t1..t10.
TRIPLES = (
    Triple("Obama", "profession", "president"),
    Triple("Obama", "died", "1982"),
    Triple("Obama", "profession", "lawyer"),
    Triple("Obama", "religion", "Christian"),
    Triple("Obama", "age", "50"),
    Triple("Obama", "support", "White Sox"),
    Triple("Obama", "spouse", "Michelle"),
    Triple("Obama", "administered by", "John G. Roberts"),
    Triple("Obama", "surgical operation", "05/01/2011"),
    Triple("Obama", "profession", "community organizer"),
)

#: Gold truth of t1..t10 (the "Correct?" column of Figure 1a).
LABELS = (True, False, True, True, False, True, True, False, False, True)

#: provides[i][j] == 1 iff extractor S_{i+1} outputs triple t_{j+1}.
PROVIDES = (
    #  t1 t2 t3 t4 t5 t6 t7 t8 t9 t10
    (1, 1, 0, 0, 0, 1, 1, 1, 1, 1),  # S1
    (1, 1, 0, 1, 1, 0, 1, 1, 1, 0),  # S2
    (0, 0, 1, 1, 1, 0, 1, 0, 0, 1),  # S3
    (1, 0, 0, 1, 0, 1, 0, 1, 1, 1),  # S4
    (1, 0, 0, 1, 0, 1, 0, 1, 1, 1),  # S5
)

#: Per-source (recall, false-positive-rate) used in Example 3.3; the recalls
#: match Figure 1b and the q's are stated by the example.
EXAMPLE_RECALLS = (2 / 3, 0.5, 2 / 3, 2 / 3, 2 / 3)
EXAMPLE_FPRS = (0.5, 2 / 3, 1 / 6, 1 / 3, 1 / 3)


def figure1_dataset() -> FusionDataset:
    """The motivating example as a :class:`FusionDataset`.

    Matrix columns are ordered t1..t10, so column ``j`` is triple
    ``t_{j+1}`` and the labels line up with Figure 1a's "Correct?" column.
    """
    index = TripleIndex(TRIPLES)
    matrix = ObservationMatrix(
        np.array(PROVIDES, dtype=bool),
        SOURCE_NAMES,
        triple_index=index,
    )
    labels = np.array(LABELS, dtype=bool)
    return FusionDataset(
        name="figure1",
        observations=matrix,
        labels=labels,
        description=(
            "Paper Figure 1: five extractors on the Barack Obama Wikipedia "
            "page; 10 triples, 6 true"
        ),
        metadata={"paper_section": "1"},
    )


def triple_column(dataset: FusionDataset, ordinal: int) -> int:
    """Matrix column of triple ``t_{ordinal}`` (1-based, as in the paper).

    Columns are constructed in t1..t10 order, so this is simply
    ``ordinal - 1``; going through the triple index keeps the lookup honest
    if the construction ever changes.
    """
    if not 1 <= ordinal <= len(TRIPLES):
        raise ValueError(f"triple ordinal must be in 1..10, got {ordinal}")
    index = dataset.observations.triple_index
    assert index is not None
    return index.id_of(TRIPLES[ordinal - 1])


def example_source_qualities() -> list[SourceQuality]:
    """Per-source quality with the q's *stated* in Example 3.3.

    Precision values are from Figure 1b (used only for reporting; the fusers
    consume recall and q).
    """
    precisions = (4 / 7, 3 / 7, 4 / 5, 4 / 6, 4 / 6)
    return [
        SourceQuality(
            name=SOURCE_NAMES[i],
            precision=precisions[i],
            recall=EXAMPLE_RECALLS[i],
            false_positive_rate=EXAMPLE_FPRS[i],
        )
        for i in range(5)
    ]


def example_parameter_model() -> ExplicitJointModel:
    """The *given* joint parameters behind Examples 4.4/4.7/4.10 and Figure 3.

    The paper fixes ``r_12345 = 0.11`` and ``q_12345 = 0.037`` and reports
    the aggressive factors ``C+ = (1, 1, 0.75, 1.5, 1.5)`` and
    ``C- = (2, 1, 1, 3, 3)`` (Figure 3).  Inverting Eq. 14-15 yields the
    leave-one-out joints used here; the derived ``r_1245 ~= 0.22`` and
    ``q_1245 ~= 0.22`` match the values quoted in Example 4.4.
    """
    r_all = 0.11
    q_all = 0.037
    c_plus = (1.0, 1.0, 0.75, 1.5, 1.5)
    c_minus = (2.0, 1.0, 1.0, 3.0, 3.0)
    joint_recalls: dict[frozenset[int], float] = {
        frozenset(range(5)): r_all,
    }
    joint_fprs: dict[frozenset[int], float] = {
        frozenset(range(5)): q_all,
    }
    for i in range(5):
        rest = frozenset(j for j in range(5) if j != i)
        joint_recalls[rest] = r_all / (c_plus[i] * EXAMPLE_RECALLS[i])
        joint_fprs[rest] = q_all / (c_minus[i] * EXAMPLE_FPRS[i])
    return ExplicitJointModel(
        example_source_qualities(),
        prior=0.5,
        joint_recalls=joint_recalls,
        joint_fprs=joint_fprs,
    )
