"""REVERB-like dataset simulator.

The paper's REVERB dataset [11] samples 500 Web sentences and runs 6
extractors over them; the gold standard has 2407 extracted triples, 616 true
and 1791 false.  The original ClueWeb-derived data is not redistributable,
so this module generates a synthetic stand-in that matches every
characteristic the paper publishes and that the algorithms are sensitive to:

- 6 sources with *fairly low precision and recall* (the paper's Section 5
  scatter places them around p in [0.25, 0.45], r in [0.2, 0.45]);
- gold standard of exactly 616 true / 1791 false triples;
- the *discovered correlations* the paper reports on this dataset
  (Section 5.1): on true triples, a strongly correlated group of 3 and a
  group of 2; on false triples, two strongly correlated pairs and one
  source strongly anti-correlated with every other source.

Because every fusion algorithm consumes only the observation matrix plus
labels, matching these marginals and the correlation structure exercises
the same code paths as the original data (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from repro.data.model import FusionDataset
from repro.data.synthetic import (
    CorrelationGroup,
    SourceSpec,
    SyntheticConfig,
    generate,
    trim_to_counts,
)
from repro.util.rng import RngLike

#: Published gold-standard composition [11] / paper Section 5.
GOLD_TRUE = 616
GOLD_FALSE = 1791

#: Six extractors with low precision and recall (paper's quality scatter).
SOURCES = (
    SourceSpec("ReVerb-A", precision=0.38, recall=0.40),
    SourceSpec("ReVerb-B", precision=0.34, recall=0.34),
    SourceSpec("ReVerb-C", precision=0.30, recall=0.28),
    SourceSpec("TextRunner-A", precision=0.42, recall=0.33),
    SourceSpec("TextRunner-B", precision=0.36, recall=0.27),
    SourceSpec("WOE-parse", precision=0.45, recall=0.22),
)

#: Correlation structure reported in Section 5.1 ("Discovered correlations"):
#: true side -- a 3-group and a 2-group; false side -- two pairs plus one
#: source anti-correlated with everyone else.
GROUPS = (
    CorrelationGroup(members=(0, 1, 2), mode="overlap_true", strength=0.85),
    CorrelationGroup(members=(3, 4), mode="overlap_true", strength=0.85),
    CorrelationGroup(members=(0, 1), mode="overlap_false", strength=0.80),
    CorrelationGroup(members=(3, 4), mode="overlap_false", strength=0.80),
    CorrelationGroup(members=(5, 0, 1, 2, 3, 4), mode="avoid_false"),
)


def reverb_config(pool_scale: float = 1.6) -> SyntheticConfig:
    """The generator configuration behind :func:`reverb_dataset`.

    ``pool_scale`` oversizes the candidate pool so that, after dropping
    provider-less candidates, both label classes still exceed the published
    gold counts and can be trimmed down exactly.
    """
    if pool_scale < 1.0:
        raise ValueError(f"pool_scale must be >= 1, got {pool_scale}")
    pool = int((GOLD_TRUE + GOLD_FALSE) * pool_scale)
    return SyntheticConfig(
        sources=SOURCES,
        n_triples=pool,
        true_fraction=0.30,
        groups=GROUPS,
        name="reverb",
    )


def reverb_dataset(seed: RngLike = 11, pool_scale: float = 1.6) -> FusionDataset:
    """Generate a REVERB-like dataset with the published gold composition."""
    dataset = generate(reverb_config(pool_scale), seed=seed)
    trimmed = trim_to_counts(dataset, GOLD_TRUE, GOLD_FALSE, seed=seed)
    return FusionDataset(
        name="reverb",
        observations=trimmed.observations,
        labels=trimmed.labels,
        description=(
            "REVERB-like simulation: 6 low-quality extractors, "
            f"{GOLD_TRUE} true / {GOLD_FALSE} false gold triples"
        ),
        metadata={
            **dict(trimmed.metadata),
            "substitutes": "ReVerb ClueWeb extraction dataset [11]",
            "paper_gold": (GOLD_TRUE, GOLD_FALSE),
        },
    )
