"""Dataset serialization: save/load a :class:`FusionDataset` as plain files.

Layout of a saved dataset directory::

    <dir>/
      matrix.csv     header: triple ids; rows: source name + 0/1 cells
      coverage.csv   same shape (written only under partial coverage)
      labels.csv     triple id, label (0/1)
      triples.jsonl  one {"id", "subject", "predicate", "object", "domain"}
                     per line (written only when a triple index exists)
      meta.json      name, description, JSON-safe metadata

Everything is text so saved datasets diff cleanly and can be inspected (or
produced) without this library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Union

import numpy as np

from repro.core.observations import ObservationMatrix
from repro.core.triples import Triple, TripleIndex
from repro.data.model import FusionDataset

PathLike = Union[str, Path]


def save_dataset(dataset: FusionDataset, directory: PathLike) -> Path:
    """Write ``dataset`` under ``directory`` (created if needed)."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    obs = dataset.observations

    with open(root / "matrix.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["source"] + [str(j) for j in range(obs.n_triples)])
        for i, name in enumerate(obs.source_names):
            writer.writerow([name] + obs.provides[i].astype(int).tolist())

    if obs.has_partial_coverage:
        with open(root / "coverage.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["source"] + [str(j) for j in range(obs.n_triples)])
            for i, name in enumerate(obs.source_names):
                writer.writerow([name] + obs.coverage[i].astype(int).tolist())

    with open(root / "labels.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["triple", "label"])
        for j, value in enumerate(dataset.labels):
            writer.writerow([j, int(value)])

    if obs.triple_index is not None:
        with open(root / "triples.jsonl", "w") as handle:
            for j, triple in enumerate(obs.triple_index):
                handle.write(
                    json.dumps(
                        {
                            "id": j,
                            "subject": triple.subject,
                            "predicate": triple.predicate,
                            "object": triple.obj,
                            "domain": triple.domain,
                        }
                    )
                    + "\n"
                )

    meta = {
        "name": dataset.name,
        "description": dataset.description,
        "metadata": _json_safe(dict(dataset.metadata)),
    }
    (root / "meta.json").write_text(json.dumps(meta, indent=2))
    return root


def load_dataset(directory: PathLike) -> FusionDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    root = Path(directory)
    names, provides = _read_matrix(root / "matrix.csv")
    coverage = None
    if (root / "coverage.csv").exists():
        cov_names, coverage = _read_matrix(root / "coverage.csv")
        if cov_names != names:
            raise ValueError("coverage.csv source order differs from matrix.csv")

    labels = np.zeros(provides.shape[1], dtype=bool)
    with open(root / "labels.csv", newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            labels[int(row["triple"])] = bool(int(row["label"]))

    index = None
    triples_path = root / "triples.jsonl"
    if triples_path.exists():
        index = TripleIndex()
        with open(triples_path) as handle:
            for line in handle:
                record = json.loads(line)
                index.add(
                    Triple(
                        subject=record["subject"],
                        predicate=record["predicate"],
                        obj=record["object"],
                        domain=record.get("domain"),
                    )
                )

    meta = json.loads((root / "meta.json").read_text())
    matrix = ObservationMatrix(
        provides,
        names,
        triple_index=index,
        coverage=coverage,
    )
    return FusionDataset(
        name=meta["name"],
        observations=matrix,
        labels=labels,
        description=meta.get("description", ""),
        metadata=meta.get("metadata", {}),
    )


def _read_matrix(path: Path) -> tuple[list[str], np.ndarray]:
    names: list[str] = []
    rows: list[list[int]] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        next(reader)  # header of triple ids
        for row in reader:
            names.append(row[0])
            rows.append([int(cell) for cell in row[1:]])
    return names, np.array(rows, dtype=bool)


def _json_safe(value: Any) -> Any:
    """Best-effort conversion of metadata into JSON-serialisable values."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
