"""RESTAURANT-like dataset simulator.

The paper's RESTAURANT dataset [17] has 7 listing sources (Yelp, Foursquare,
OpenTable, MechanicalTurk, YellowPages, CitySearch, MenuPages) providing
location triples for ~1000 restaurants; the gold standard -- 93 triples,
68 true and 25 false -- was labelled by majority vote over 10 Mechanical
Turk responses.  The original crawl is not redistributable, so this module
generates a statistical stand-in matching the published characteristics:

- 7 sources, *all high precision* and mostly high recall (the paper's
  quality scatter);
- a gold standard of exactly 68 true / 25 false triples;
- the discovered correlations of Section 5.1: on true triples a strongly
  correlated group of 4 and a fairly strongly anti-correlated pair; on
  false triples a strongly correlated group of 6.

Each triple is given RDF form ``{restaurant-k, located at, value}`` so the
dataset also exercises the triple-indexed code paths.
"""

from __future__ import annotations

import numpy as np

from repro.core.observations import ObservationMatrix
from repro.core.triples import Triple, TripleIndex
from repro.data.model import FusionDataset
from repro.data.synthetic import (
    CorrelationGroup,
    SourceSpec,
    SyntheticConfig,
    generate,
    trim_to_counts,
)
from repro.util.rng import RngLike

#: Published gold-standard composition [17] / paper Section 5.
GOLD_TRUE = 68
GOLD_FALSE = 25

#: Seven listing sources, all high precision, mostly high recall.  The
#: configured precisions run higher than the target band because the gold
#: trim keeps only *provided* false triples, which biases realised precision
#: downward; these values land the realised scatter in the paper's band.
SOURCES = (
    SourceSpec("Yelp", precision=0.99, recall=0.85),
    SourceSpec("Foursquare", precision=0.98, recall=0.80),
    SourceSpec("OpenTable", precision=0.98, recall=0.72),
    SourceSpec("MechanicalTurk", precision=0.94, recall=0.55),
    SourceSpec("YellowPages", precision=0.97, recall=0.78),
    SourceSpec("CitySearch", precision=0.96, recall=0.65),
    SourceSpec("MenuPages", precision=0.96, recall=0.60),
)

#: Section 5.1 correlations: true side -- a 4-group and an anti-correlated
#: pair; false side -- a 6-group (shared upstream listing errors).  The
#: strengths are high because with only 68 true / 25 false gold triples a
#: weaker correlation would not be statistically identifiable -- and the
#: paper does identify these groups on its 93-triple gold standard.
GROUPS = (
    CorrelationGroup(members=(0, 1, 2, 4), mode="overlap_true", strength=1.0),
    CorrelationGroup(members=(5, 6), mode="complementary_true", strength=0.95),
    CorrelationGroup(
        members=(0, 1, 2, 3, 4, 5), mode="overlap_false", strength=0.85
    ),
)


def restaurant_config(pool_scale: float = 8.0) -> SyntheticConfig:
    """Generator configuration behind :func:`restaurant_dataset`.

    The pool is oversized generously because with high-precision sources and
    positively correlated mistakes, the provided-false yield per candidate
    is very low, and the gold standard needs 25 provided false triples.
    """
    if pool_scale < 1.0:
        raise ValueError(f"pool_scale must be >= 1, got {pool_scale}")
    pool = int((GOLD_TRUE + GOLD_FALSE) * pool_scale)
    return SyntheticConfig(
        sources=SOURCES,
        n_triples=pool,
        true_fraction=0.5,
        groups=GROUPS,
        name="restaurant",
    )


def restaurant_dataset(seed: RngLike = 23, pool_scale: float = 8.0) -> FusionDataset:
    """Generate a RESTAURANT-like dataset with the published gold counts."""
    dataset = generate(restaurant_config(pool_scale), seed=seed)
    trimmed = trim_to_counts(dataset, GOLD_TRUE, GOLD_FALSE, seed=seed)
    # Attach restaurant-location triple semantics to the kept columns.
    triples = []
    for j, is_true in enumerate(trimmed.labels):
        marker = "verified-address" if is_true else "stale-address"
        triples.append(
            Triple(
                subject=f"restaurant{j}",
                predicate="located at",
                obj=f"{marker}-{j}",
            )
        )
    matrix = ObservationMatrix(
        trimmed.observations.provides.copy(),
        trimmed.observations.source_names,
        triple_index=TripleIndex(triples),
        coverage=trimmed.observations.coverage.copy(),
    )
    return FusionDataset(
        name="restaurant",
        observations=matrix,
        labels=trimmed.labels,
        description=(
            "RESTAURANT-like simulation: 7 high-precision listing sources, "
            f"{GOLD_TRUE} true / {GOLD_FALSE} false gold triples"
        ),
        metadata={
            **dict(trimmed.metadata),
            "substitutes": "restaurant dataset of Marian & Wu [17]",
            "paper_gold": (GOLD_TRUE, GOLD_FALSE),
        },
    )
