"""Synthetic workload generator (paper Section 5.2).

Generates observation matrices from configured per-source precision/recall
plus optional *correlation groups* realising the four scenarios of
Example 4.1:

- ``copy``               -- members replicate a template source (Scenario 1);
- ``overlap_true``       -- members share true triples but err independently
                            (Scenario 2);
- ``overlap_false``      -- members share mistakes but find true triples
                            independently (Scenario 3);
- ``complementary_true`` -- members split the true triples between them
                            (Scenario 4, negative correlation on truths);
- ``complementary_false``-- members make disjoint mistakes (negative
                            correlation on falsehoods, Figure 7's second case).

Mechanics: a source with precision ``p`` and recall ``r`` in a world with
``n_T`` true and ``n_F`` false triples provides each true triple with
probability ``r`` and each false triple with probability
``q = r * (n_T / n_F) * (1 - p) / p`` (the Theorem 3.5 relation with
``alpha = n_T / (n_T + n_F)``), so realised precision/recall concentrate on
the configured values.  A group of ``mode`` other than ``copy`` mixes each
member's independent draw with a shared (or partitioned) template at rate
``strength`` -- ``strength = 0`` degrades to independence, ``1`` is full
correlation.  Marginal rates are preserved by construction, so correlation
is injected *without* moving precision or recall.

Triples with no provider are dropped from the output, since the fusion
problem is defined over provided triples only (Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro.core.observations import ObservationMatrix
from repro.data.model import FusionDataset
from repro.util.rng import RngLike, ensure_rng
from repro.util.validation import (
    check_fraction,
    check_positive_int,
    check_probability,
)

GroupMode = Literal[
    "copy",
    "overlap_true",
    "overlap_false",
    "complementary_true",
    "complementary_false",
    "avoid_false",
]

_VALID_MODES = (
    "copy",
    "overlap_true",
    "overlap_false",
    "complementary_true",
    "complementary_false",
    "avoid_false",
)

#: Which side(s) of the data each mode rewrites; a source may belong to at
#: most one group per side.
_MODE_SIDES = {
    "copy": ("true", "false"),
    "overlap_true": ("true",),
    "complementary_true": ("true",),
    "overlap_false": ("false",),
    "complementary_false": ("false",),
    "avoid_false": ("false",),
}


@dataclass(frozen=True)
class SourceSpec:
    """Configured quality of one synthetic source."""

    name: str
    precision: float
    recall: float

    def __post_init__(self) -> None:
        check_fraction(self.precision, "precision")
        check_probability(self.recall, "recall")
        if self.recall == 0.0:
            raise ValueError("recall 0 would make the source provide nothing")


@dataclass(frozen=True)
class CorrelationGroup:
    """A set of sources correlated in one of the Example 4.1 modes."""

    members: tuple[int, ...]
    mode: GroupMode
    strength: float = 0.9

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise ValueError("a correlation group needs at least two members")
        if len(set(self.members)) != len(self.members):
            raise ValueError("group members must be distinct")
        if self.mode not in _VALID_MODES:
            raise ValueError(
                f"unknown group mode {self.mode!r}; expected one of {_VALID_MODES}"
            )
        if not 0.0 <= self.strength <= 1.0:
            raise ValueError(f"strength must be in [0, 1], got {self.strength}")


@dataclass(frozen=True)
class SyntheticConfig:
    """Full description of a synthetic fusion workload."""

    sources: tuple[SourceSpec, ...]
    n_triples: int = 1000
    true_fraction: float = 0.5
    groups: tuple[CorrelationGroup, ...] = field(default_factory=tuple)
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if len(self.sources) < 1:
            raise ValueError("at least one source required")
        check_positive_int(self.n_triples, "n_triples")
        check_fraction(self.true_fraction, "true_fraction")
        n = len(self.sources)
        used_per_side: dict[str, set[int]] = {"true": set(), "false": set()}
        for group in self.groups:
            for member in group.members:
                if not 0 <= member < n:
                    raise ValueError(f"group member {member} out of range 0..{n - 1}")
            # avoid_false only rewrites its first member; the rest are the
            # sources being avoided and remain free to join other groups.
            constrained = (
                group.members[:1] if group.mode == "avoid_false" else group.members
            )
            for member in constrained:
                for side in _MODE_SIDES[group.mode]:
                    if member in used_per_side[side]:
                        raise ValueError(
                            f"source {member} appears in more than one "
                            f"{side}-side group"
                        )
                    used_per_side[side].add(member)

    @property
    def n_sources(self) -> int:
        return len(self.sources)


def uniform_sources(
    n: int, precision: float, recall: float, prefix: str = "S"
) -> tuple[SourceSpec, ...]:
    """``n`` sources of identical quality (the Figure 6/7 setting)."""
    check_positive_int(n, "n")
    return tuple(
        SourceSpec(name=f"{prefix}{i + 1}", precision=precision, recall=recall)
        for i in range(n)
    )


def false_positive_rate_for(
    spec: SourceSpec, n_true: int, n_false: int
) -> float:
    """Per-false-triple provision rate hitting the configured precision."""
    if n_false == 0:
        return 0.0
    rate = spec.recall * (n_true / n_false) * (1.0 - spec.precision) / spec.precision
    if rate > 1.0:
        raise ValueError(
            f"source {spec.name}: precision {spec.precision} with recall "
            f"{spec.recall} is unattainable with {n_true} true / {n_false} "
            f"false triples (needs false-provision rate {rate:.3f} > 1)"
        )
    return rate


def generate(config: SyntheticConfig, seed: RngLike = None) -> FusionDataset:
    """Sample one dataset from ``config``.

    The returned dataset drops provider-less triples and records the
    configuration in ``metadata``.
    """
    rng = ensure_rng(seed)
    n_true = int(round(config.n_triples * config.true_fraction))
    n_false = config.n_triples - n_true
    labels = np.zeros(config.n_triples, dtype=bool)
    labels[:n_true] = True
    true_ids = np.arange(n_true)
    false_ids = np.arange(n_true, config.n_triples)

    provides = np.zeros((config.n_sources, config.n_triples), dtype=bool)
    fprs = [
        false_positive_rate_for(spec, n_true, n_false) for spec in config.sources
    ]
    # Independent layer: every source draws by its own rates.
    for i, spec in enumerate(config.sources):
        provides[i, true_ids] = rng.random(n_true) < spec.recall
        provides[i, false_ids] = rng.random(n_false) < fprs[i]

    # Correlation layer: groups overwrite their members on the chosen side.
    # avoid_false groups run last so they see the final mistakes to avoid.
    ordered = sorted(config.groups, key=lambda g: g.mode == "avoid_false")
    for group in ordered:
        _apply_group(provides, config, group, fprs, true_ids, false_ids, rng)

    keep = provides.any(axis=0)
    matrix = ObservationMatrix(
        provides[:, keep], [spec.name for spec in config.sources]
    )
    return FusionDataset(
        name=config.name,
        observations=matrix,
        labels=labels[keep],
        description=(
            f"synthetic: {config.n_sources} sources, {config.n_triples} triples "
            f"({config.true_fraction:.0%} true), {len(config.groups)} groups"
        ),
        metadata={
            "config": config,
            "n_generated": config.n_triples,
            "n_dropped_unprovided": int((~keep).sum()),
        },
    )


def _apply_group(
    provides: np.ndarray,
    config: SyntheticConfig,
    group: CorrelationGroup,
    fprs: Sequence[float],
    true_ids: np.ndarray,
    false_ids: np.ndarray,
    rng: np.random.Generator,
) -> None:
    members = list(group.members)
    if group.mode == "copy":
        mirror_copy(provides, members, group.strength, rng)
        return
    if group.mode == "overlap_true":
        rates = [config.sources[i].recall for i in members]
        share_template(provides, members, true_ids, rates, group.strength, rng)
    elif group.mode == "overlap_false":
        rates = [fprs[i] for i in members]
        share_template(provides, members, false_ids, rates, group.strength, rng)
    elif group.mode == "complementary_true":
        rates = [config.sources[i].recall for i in members]
        partition_disjoint(provides, members, true_ids, rates, group.strength, rng)
    elif group.mode == "complementary_false":
        rates = [fprs[i] for i in members]
        partition_disjoint(provides, members, false_ids, rates, group.strength, rng)
    elif group.mode == "avoid_false":
        avoid_union(provides, members, false_ids, fprs[members[0]], rng)


def mirror_copy(
    provides: np.ndarray,
    members: list[int],
    strength: float,
    rng: np.random.Generator,
) -> None:
    """Members mirror the first member's row on a ``strength`` fraction.

    Scenario 1 of Example 4.1 (replica sources) at ``strength = 1``.
    """
    template = provides[members[0]].copy()
    n = template.size
    for i in members[1:]:
        mirror = rng.random(n) < strength
        provides[i, mirror] = template[mirror]


def share_template(
    provides: np.ndarray,
    members: list[int],
    triple_ids: np.ndarray,
    rates: Sequence[float],
    strength: float,
    rng: np.random.Generator,
) -> None:
    """Shared-template positive correlation, marginal rates preserved.

    A template subset is drawn at the *maximum* member rate; each member
    follows the template (thinned down to its own rate) with probability
    ``strength`` and keeps its independent draw otherwise.
    """
    max_rate = max(rates)
    if max_rate == 0.0:
        return
    template = rng.random(triple_ids.size) < max_rate
    for i, rate in zip(members, rates):
        thinned = template & (rng.random(triple_ids.size) < rate / max_rate)
        follow = rng.random(triple_ids.size) < strength
        row = provides[i, triple_ids]
        row[follow] = thinned[follow]
        provides[i, triple_ids] = row


def partition_disjoint(
    provides: np.ndarray,
    members: list[int],
    triple_ids: np.ndarray,
    rates: Sequence[float],
    strength: float,
    rng: np.random.Generator,
) -> None:
    """Partitioned negative correlation, marginal rates preserved.

    Each triple is assigned to one member (uniformly); the owner provides it
    with probability ``k * rate`` (its marginal scaled up by the group size),
    non-owners skip it.  Rates requiring ``k * rate > 1`` are clamped with
    the excess spilling back into independence, keeping the construction
    valid for any configuration.
    """
    k = len(members)
    assignment = rng.integers(0, k, size=triple_ids.size)
    for slot, (i, rate) in enumerate(zip(members, rates)):
        boosted = min(k * rate, 1.0)
        owned = assignment == slot
        partitioned = owned & (rng.random(triple_ids.size) < boosted)
        follow = rng.random(triple_ids.size) < strength
        row = provides[i, triple_ids]
        row[follow] = partitioned[follow]
        provides[i, triple_ids] = row


def avoid_union(
    provides: np.ndarray,
    members: list[int],
    triple_ids: np.ndarray,
    rate: float,
    rng: np.random.Generator,
) -> None:
    """``members[0]`` redraws its picks away from the others' (anti-correlation).

    The first member's provisions on ``triple_ids`` are resampled from the
    triples that *no other group member* provides, at a boosted rate that
    preserves its marginal.  This realises a source "strongly anti-correlated
    with every other source" on false triples, as the paper observes in
    REVERB.
    """
    avoider = members[0]
    others = members[1:]
    if not others:
        return
    claimed = provides[np.asarray(others), :][:, triple_ids].any(axis=0)
    unclaimed = ~claimed
    n_unclaimed = int(unclaimed.sum())
    if n_unclaimed == 0:
        provides[avoider, triple_ids] = False
        return
    boosted = min(rate * triple_ids.size / n_unclaimed, 1.0)
    row = np.zeros(triple_ids.size, dtype=bool)
    row[unclaimed] = rng.random(n_unclaimed) < boosted
    provides[avoider, triple_ids] = row


def trim_to_counts(
    dataset: FusionDataset,
    n_true: int,
    n_false: int,
    seed: RngLike = None,
) -> FusionDataset:
    """Subsample a dataset's columns to exact true/false triple counts.

    The dataset simulators oversample a candidate pool (some candidates end
    up provider-less and are dropped) and then trim to the *published* gold
    sizes with this helper.  If a side has fewer triples than requested, all
    of them are kept.
    """
    rng = ensure_rng(seed)
    keep = np.zeros(dataset.n_triples, dtype=bool)
    for label_value, wanted in ((True, n_true), (False, n_false)):
        pool = np.flatnonzero(dataset.labels == label_value)
        if pool.size <= wanted:
            keep[pool] = True
        else:
            keep[rng.choice(pool, size=wanted, replace=False)] = True
    return FusionDataset(
        name=dataset.name,
        observations=dataset.observations.restricted_to_triples(keep),
        labels=dataset.labels[keep],
        description=dataset.description,
        metadata={**dict(dataset.metadata), "trimmed_to": (n_true, n_false)},
    )
