"""Serving resilience policies: bounded retries and per-lane circuit breaking.

The async front end's fault posture is built from three pieces, each
deliberately boring on its own:

- :class:`RetryPolicy` -- *which* errors are worth re-running and *when*.
  Only transport/infrastructure errors are retry-safe (an injected fault,
  a broken executor, a timeout, an OS-level connection error); semantic
  errors (``ValueError`` widths, typed ``Overloaded`` shedding) re-running
  cannot fix and must fail fast.  Backoff is exponential with **seeded**
  jitter, so a chaos replay produces the same sleep schedule bit for bit.
- :class:`CircuitBreaker` -- per-lane failure accounting.  K consecutive
  batch failures open the breaker; while open, submissions are shed with
  a typed ``Overloaded("circuit_open")`` or force-degraded to the cold
  lane (the front end's choice); after a cooldown one half-open probe is
  admitted, and its outcome closes or re-opens the circuit.
- The **degradation ladder** (driven by the front end, not this module):
  delta-aware fused scoring -> cold micro-batch -> inline per-request
  cold scoring.  Every rung reproduces the reference scores *bit for
  bit* -- the delta and micro-batch layers are exactness-preserving
  optimisations, so degradation can only cost latency.  That is what
  makes aggressive fallback safe to automate.

Both classes are plain single-owner state machines: the front end calls
them from its event loop only, so they carry no locks (and no pickle
surface -- the owning front end already refuses to pickle).
"""

from __future__ import annotations

import asyncio
import random
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import Any, Callable, Optional

from repro.core.faults import InjectedFault
from repro.serve.admission import Overloaded

#: Exception families a retry can plausibly fix: deliberately injected
#: faults, dead/hung executors, timeouts, and OS-level transport errors.
#: ``Overloaded`` is typed shedding -- retrying it from inside the server
#: would amplify the very overload it signals -- and semantic errors
#: (``ValueError``/``TypeError``) fail identically every time.
RETRYABLE_ERRORS: "tuple[type[BaseException], ...]" = (
    InjectedFault,
    BrokenExecutor,
    FuturesTimeout,
    asyncio.TimeoutError,
    ConnectionError,
    OSError,
)

#: Breaker states (:attr:`CircuitBreaker.state`).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


def is_retryable(error: BaseException) -> bool:
    """Whether ``error`` (or anything on its cause chain) is retry-safe.

    Walks ``__cause__``/``__context__`` so a wrapped infrastructure error
    (e.g. ``RuntimeError`` raised ``from`` an ``InjectedFault``) keeps its
    retryability.  ``Overloaded`` anywhere on the chain wins as
    non-retryable: shedding is a decision, not a fault.
    """
    seen: set[int] = set()
    node: Optional[BaseException] = error
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        if isinstance(node, Overloaded):
            return False
        if isinstance(node, RETRYABLE_ERRORS):
            return True
        node = node.__cause__ or node.__context__
    return False


class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    ``backoff_seconds(attempt)`` grows ``base_delay * 2**attempt`` up to
    ``max_delay``, scaled by a jitter factor in ``[0.5, 1.0)`` drawn from
    a ``random.Random(jitter_seed)`` stream -- decorrelating retry storms
    across lanes while keeping every chaos replay's schedule
    reproducible.
    """

    def __init__(
        self,
        max_retries: int = 2,
        base_delay: float = 0.005,
        max_delay: float = 0.1,
        jitter_seed: int = 0,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError(
                "base_delay and max_delay must be >= 0, got "
                f"{base_delay} / {max_delay}"
            )
        if max_delay < base_delay:
            raise ValueError(
                f"max_delay ({max_delay}) must be >= base_delay "
                f"({base_delay})"
            )
        self._max_retries = int(max_retries)
        self._base_delay = float(base_delay)
        self._max_delay = float(max_delay)
        self._rng = random.Random(jitter_seed)

    @property
    def max_retries(self) -> int:
        return self._max_retries

    def is_retryable(self, error: BaseException) -> bool:
        """Policy hook; delegates to the module predicate."""
        return is_retryable(error)

    def backoff_seconds(self, attempt: int) -> float:
        """The sleep before retry ``attempt`` (0-based), jittered."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        ceiling = min(self._max_delay, self._base_delay * (2.0 ** attempt))
        return ceiling * (0.5 + 0.5 * self._rng.random())


class CircuitBreaker:
    """A per-lane consecutive-failure breaker with half-open probes.

    Closed until ``failure_threshold`` *consecutive* failures, then open
    for ``cooldown_seconds``: :meth:`allow` answers ``False`` (the front
    end sheds or degrades the lane's traffic without queueing it behind a
    failing dependency).  After the cooldown, exactly one caller is
    admitted as a half-open probe; :meth:`record_success` closes the
    circuit, :meth:`record_failure` re-opens it for another cooldown.

    Single-owner: mutated only from the serving loop, so no lock.  The
    clock is injectable for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {cooldown_seconds}"
            )
        self._threshold = int(failure_threshold)
        self._cooldown = float(cooldown_seconds)
        self._clock = clock
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._opens = 0
        self._probes = 0
        self._shed = 0

    @property
    def state(self) -> str:
        return self._state

    @property
    def failure_threshold(self) -> int:
        return self._threshold

    def allow(self) -> bool:
        """May a new submission use this lane right now?

        Closed: always.  Open: no, until the cooldown elapses -- then the
        caller that observes the elapsed cooldown becomes the single
        half-open probe.  Half-open: no (the probe is already in flight).
        """
        if self._state == BREAKER_CLOSED:
            return True
        if self._state == BREAKER_OPEN:
            if self._clock() - self._opened_at >= self._cooldown:
                self._state = BREAKER_HALF_OPEN
                self._probes += 1
                return True
            self._shed += 1
            return False
        self._shed += 1
        return False

    def record_success(self) -> None:
        """A lane batch completed: reset the failure run, close the circuit."""
        self._consecutive_failures = 0
        self._state = BREAKER_CLOSED

    def record_failure(self) -> None:
        """A lane batch failed outright: count it; open at the threshold.

        A half-open probe failing re-opens immediately regardless of the
        threshold -- the circuit was only ajar.
        """
        self._consecutive_failures += 1
        if (
            self._state == BREAKER_HALF_OPEN
            or self._consecutive_failures >= self._threshold
        ):
            self._state = BREAKER_OPEN
            self._opened_at = self._clock()
            self._opens += 1

    @property
    def stats(self) -> "dict[str, Any]":
        return {
            "state": self._state,
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self._threshold,
            "cooldown_seconds": self._cooldown,
            "opens": self._opens,
            "probes": self._probes,
            "shed": self._shed,
        }
