"""The async serving front end: admission -> lanes -> deadline batcher.

:class:`AsyncServingFrontend` turns a :class:`~repro.core.api.ScoringSession`
into an ``asyncio`` service.  Each ``await frontend.submit(matrix)`` travels
through three stages:

1. **Admission** (:mod:`repro.serve.admission`): a bounded queue by depth
   and in-flight bytes; excess traffic is shed immediately with a typed
   :class:`~repro.serve.admission.Overloaded` instead of queueing
   unboundedly.
2. **Lanes** (:mod:`repro.serve.lanes`): delta-friendly requests (same
   width as the model, small churn) batch separately from cold traffic,
   so odd matrices never dilute the delta stream's fused batches.
3. **Deadline batching**: each lane's dispatcher coalesces pending
   requests and flushes when the *oldest request's latency budget is
   half-spent* (not after a fixed window), when the batch is full, or at
   shutdown -- the SLO-aware replacement for the fixed ``wait_seconds``
   sleep.  ``batch_cutoff="fixed"`` restores the fixed-window behaviour
   as a benchmark baseline.

Batches execute on a small thread pool through
:meth:`~repro.core.api.ScoringSession.score_batch`, so all coroutine
state stays confined to the event-loop thread (no locks) and the GIL is
released inside numpy while the loop keeps admitting traffic.

Refit-during-traffic (:meth:`AsyncServingFrontend.refit`) follows a
drain -> swap -> replay protocol: new batch dispatch is gated, in-flight
batches drain to zero, the session swaps generations via its own
``refit``/``refit_delta``, and only then does queued traffic replay --
so no request is ever scored against a mixed generation, and every
result carries the generation that scored it.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Optional

import numpy as np

from repro.core.api import ScoringSession, check_refit_mode
from repro.core.observations import ObservationMatrix
from repro.serve.admission import SHED_CLOSED, AdmissionController, Overloaded
from repro.serve.lanes import LANES, LaneRouter, expected_sources_of

#: Valid ``batch_cutoff`` modes: deadline-aware (flush at half the oldest
#: budget) or the fixed coalescing window (the pre-serve baseline).
BATCH_CUTOFFS = ("deadline", "fixed")


@dataclass(frozen=True)
class ServeResult:
    """One served request: scores plus serving metadata.

    ``generation`` counts the session's refits as seen by this front end
    (0 until the first :meth:`AsyncServingFrontend.refit`), so callers
    can pin exactly which model scored them.  Latencies are measured on
    the event loop's clock: ``queued_seconds`` from admission to batch
    dispatch, ``service_seconds`` inside the scoring pass, and
    ``latency_seconds`` end to end.
    """

    scores: np.ndarray
    lane: str
    generation: int
    batch_size: int
    queued_seconds: float
    service_seconds: float
    latency_seconds: float


class _Request:
    """One admitted request waiting in a lane."""

    __slots__ = (
        "observations",
        "future",
        "nbytes",
        "admitted_at",
        "flush_at",
    )

    def __init__(
        self,
        observations: ObservationMatrix,
        future: "asyncio.Future[ServeResult]",
        nbytes: int,
        admitted_at: float,
        flush_at: float,
    ) -> None:
        self.observations = observations
        self.future = future
        self.nbytes = nbytes
        self.admitted_at = admitted_at
        self.flush_at = flush_at


class _LaneState:
    """Per-lane pending queue plus its dispatcher's wake-up event."""

    __slots__ = ("name", "pending", "event", "batches", "served")

    def __init__(self, name: str) -> None:
        self.name = name
        self.pending: list[_Request] = []
        self.event = asyncio.Event()
        self.batches = 0
        self.served = 0


class AsyncServingFrontend:
    """Admission-controlled, SLO-aware async serving over one session.

    Use as an async context manager (or call :meth:`start` / :meth:`close`
    explicitly)::

        async with AsyncServingFrontend(session) as frontend:
            scores = await frontend.submit(matrix, latency_budget=0.05)

    All coroutine methods must run on one event loop; scoring itself
    runs on an internal thread pool.  Scores are bit-identical to a
    direct ``session.score`` of the same matrix -- batching, lanes, and
    refit gating change scheduling, never values.
    """

    def __init__(
        self,
        session: ScoringSession,
        *,
        max_queue_depth: int = 256,
        max_inflight_bytes: Optional[int] = None,
        max_batch_requests: int = 64,
        default_latency_budget: float = 0.05,
        batch_cutoff: str = "deadline",
        fixed_window_seconds: float = 0.002,
        small_churn_fraction: float = 0.25,
        executor_workers: int = 2,
    ) -> None:
        if max_batch_requests < 1:
            raise ValueError(
                f"max_batch_requests must be >= 1, got {max_batch_requests}"
            )
        if default_latency_budget <= 0.0:
            raise ValueError(
                "default_latency_budget must be positive, got "
                f"{default_latency_budget}"
            )
        if batch_cutoff not in BATCH_CUTOFFS:
            raise ValueError(
                f"batch_cutoff must be one of {BATCH_CUTOFFS}, got "
                f"{batch_cutoff!r}"
            )
        if fixed_window_seconds < 0.0:
            raise ValueError(
                "fixed_window_seconds must be non-negative, got "
                f"{fixed_window_seconds}"
            )
        if executor_workers < 1:
            raise ValueError(
                f"executor_workers must be >= 1, got {executor_workers}"
            )
        self._session = session
        self._max_batch = int(max_batch_requests)
        self._default_budget = float(default_latency_budget)
        self._cutoff = batch_cutoff
        self._fixed_window = float(fixed_window_seconds)
        self._admission = AdmissionController(
            max_queue_depth=max_queue_depth,
            max_inflight_bytes=max_inflight_bytes,
        )
        self._router = LaneRouter.for_session(
            session, small_churn_fraction=small_churn_fraction
        )
        self._executor_workers = int(executor_workers)
        # Loop-confined state, created by start(); no locks by design --
        # every mutation below happens on the event-loop thread.
        self._lanes: dict[str, _LaneState] = {}
        self._tasks: list["asyncio.Task[None]"] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._refit_gate: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._refit_serialize: Optional[asyncio.Lock] = None
        self._started = False
        self._closing = False
        self._inflight = 0
        self._generation = 0
        self._refits = 0
        self._fused_requests = 0
        self._largest_batch = 0

    def __getstate__(self) -> dict:
        raise TypeError(
            "AsyncServingFrontend is process-local (it owns an executor "
            "and event-loop primitives); build one per process instead "
            "of pickling it"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def __aenter__(self) -> "AsyncServingFrontend":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def start(self) -> None:
        """Start the per-lane dispatchers (idempotent until closed)."""
        if self._closing:
            raise RuntimeError("a closed frontend cannot be restarted")
        if self._started:
            return
        self._refit_gate = asyncio.Event()
        self._refit_gate.set()
        self._idle = asyncio.Event()
        self._idle.set()
        self._refit_serialize = asyncio.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=self._executor_workers,
            thread_name_prefix="repro-serve",
        )
        for name in LANES:
            lane = _LaneState(name)
            self._lanes[name] = lane
            self._tasks.append(
                asyncio.ensure_future(self._dispatch_lane(lane))
            )
        self._started = True

    async def close(self) -> None:
        """Graceful shutdown: flush every queued request, then stop.

        Pending traffic is served (the dispatchers flush their queues
        immediately rather than waiting out any window); submits racing
        or following the close are shed with ``Overloaded("closed")``.
        Idempotent.
        """
        if self._closing:
            return
        self._closing = True
        if not self._started:
            return
        for lane in self._lanes.values():
            lane.event.set()
        await asyncio.gather(*self._tasks)
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    async def submit(
        self,
        observations: ObservationMatrix,
        latency_budget: Optional[float] = None,
    ) -> np.ndarray:
        """Score ``observations``; returns the per-triple score vector.

        Raises :class:`~repro.serve.admission.Overloaded` when shed.
        """
        result = await self.submit_detailed(
            observations, latency_budget=latency_budget
        )
        return result.scores

    async def submit_detailed(
        self,
        observations: ObservationMatrix,
        latency_budget: Optional[float] = None,
    ) -> ServeResult:
        """Like :meth:`submit`, returning the full :class:`ServeResult`."""
        if not self._started:
            raise RuntimeError(
                "start() the frontend (or enter its async context) "
                "before submitting"
            )
        if self._closing:
            raise Overloaded(SHED_CLOSED, 0.0, 0.0)
        budget = (
            self._default_budget if latency_budget is None
            else float(latency_budget)
        )
        if budget <= 0.0:
            raise ValueError(
                f"latency_budget must be positive, got {latency_budget}"
            )
        nbytes = int(
            observations.provides.nbytes + observations.coverage.nbytes
        )
        self._admission.admit(nbytes)
        loop = asyncio.get_running_loop()
        now = loop.time()
        try:
            lane_name = self._router.classify(observations)
            lane = self._lanes[lane_name]
            if self._cutoff == "deadline":
                # SLO-aware cut-off: leave half the budget for the
                # scoring pass itself.
                flush_at = now + budget / 2.0
            else:
                flush_at = now + self._fixed_window
            request = _Request(
                observations,
                loop.create_future(),
                nbytes,
                admitted_at=now,
                flush_at=flush_at,
            )
            lane.pending.append(request)
            lane.event.set()
        except BaseException:
            # Admission was charged but the request never reached a
            # lane; dispatch can no longer release it, so do it here.
            self._admission.release(nbytes)
            raise
        return await request.future

    async def refit(
        self,
        observations: ObservationMatrix,
        labels: np.ndarray,
        mode: str = "delta",
        train_mask: Optional[np.ndarray] = None,
        **overrides: Any,
    ) -> int:
        """Swap model generations under live traffic (drain -> swap -> replay).

        Gates new batch dispatch, waits for in-flight batches to drain,
        runs the session's :meth:`~repro.core.api.ScoringSession.refit`
        (``mode="cold"``) or
        :meth:`~repro.core.api.ScoringSession.refit_delta`
        (``mode="delta"``) on the executor, rebinds the lane router to
        the new generation, then reopens the gate so queued requests
        replay against it.  Returns the new generation number.
        """
        mode = check_refit_mode(mode)
        if not self._started:
            raise RuntimeError("start() the frontend before refitting")
        if self._closing:
            raise RuntimeError("a closing frontend cannot refit")
        assert self._refit_serialize is not None
        assert self._refit_gate is not None
        assert self._idle is not None
        assert self._executor is not None
        loop = asyncio.get_running_loop()
        async with self._refit_serialize:
            self._refit_gate.clear()
            try:
                while self._inflight:
                    self._idle.clear()
                    await self._idle.wait()
                refit_call = (
                    self._session.refit_delta if mode == "delta"
                    else self._session.refit
                )
                await loop.run_in_executor(
                    self._executor,
                    partial(
                        refit_call,
                        observations,
                        labels,
                        train_mask=train_mask,
                        **overrides,
                    ),
                )
                self._generation += 1
                self._refits += 1
                self._router.rebind(expected_sources_of(self._session))
            finally:
                self._refit_gate.set()
        return self._generation

    # ------------------------------------------------------------------
    # Internals (event-loop thread only)
    # ------------------------------------------------------------------

    def _batch_cutoff_time(self, lane: _LaneState) -> float:
        """When the lane's current batch must flush.

        Deadline mode: the earliest pending half-budget deadline.  Fixed
        mode: the oldest request's arrival plus the fixed window (the
        pre-serve baseline -- later arrivals and full queues do not move
        it up).
        """
        if self._cutoff == "fixed":
            return lane.pending[0].flush_at
        return min(request.flush_at for request in lane.pending)

    async def _dispatch_lane(self, lane: _LaneState) -> None:
        """One lane's dispatcher: coalesce, cut at the deadline, execute."""
        loop = asyncio.get_running_loop()
        while True:
            if not lane.pending:
                if self._closing:
                    return
                lane.event.clear()
                await lane.event.wait()
                continue
            now = loop.time()
            cutoff = self._batch_cutoff_time(lane)
            full = len(lane.pending) >= self._max_batch
            flush = (
                self._closing
                or now >= cutoff
                # A full batch ships immediately under the deadline
                # cut-off; the fixed baseline deliberately waits the
                # window out (that is the burst bug being benchmarked).
                or (full and self._cutoff == "deadline")
            )
            if not flush:
                lane.event.clear()
                try:
                    await asyncio.wait_for(lane.event.wait(), cutoff - now)
                except asyncio.TimeoutError:
                    pass
                continue
            batch = lane.pending[: self._max_batch]
            del lane.pending[: len(batch)]
            await self._execute_batch(lane, batch)

    async def _execute_batch(
        self, lane: _LaneState, batch: list[_Request]
    ) -> None:
        """Score one batch on the executor and resolve its futures."""
        assert self._refit_gate is not None
        assert self._idle is not None
        assert self._executor is not None
        # Gate check and in-flight increment must share one synchronous
        # block: a refit clearing the gate between our wake-up and the
        # dispatch would otherwise race the drain.
        while True:
            if self._refit_gate.is_set():
                self._inflight += 1
                break
            await self._refit_gate.wait()
        loop = asyncio.get_running_loop()
        try:
            generation = self._generation
            dispatched_at = loop.time()
            matrices = [request.observations for request in batch]
            try:
                outcome = await loop.run_in_executor(
                    self._executor, self._session.score_batch, matrices
                )
            except Exception as error:
                for request in batch:
                    self._admission.release(request.nbytes)
                    if not request.future.done():
                        wrapped = RuntimeError(
                            "serving batch failed before scoring this "
                            "request"
                        )
                        wrapped.__cause__ = error
                        request.future.set_exception(wrapped)
                return
            completed_at = loop.time()
            lane.batches += 1
            lane.served += len(batch)
            self._fused_requests += outcome.fused_requests
            self._largest_batch = max(self._largest_batch, len(batch))
            for request, scores, request_error in zip(
                batch, outcome.scores, outcome.errors
            ):
                self._admission.release(request.nbytes)
                if request.future.done():
                    continue  # the caller gave up (cancelled) mid-batch
                if request_error is not None:
                    request.future.set_exception(request_error)
                else:
                    assert scores is not None
                    request.future.set_result(
                        ServeResult(
                            scores=scores,
                            lane=lane.name,
                            generation=generation,
                            batch_size=len(batch),
                            queued_seconds=(
                                dispatched_at - request.admitted_at
                            ),
                            service_seconds=completed_at - dispatched_at,
                            latency_seconds=(
                                completed_at - request.admitted_at
                            ),
                        )
                    )
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    @property
    def session(self) -> ScoringSession:
        return self._session

    @property
    def generation(self) -> int:
        """How many refits this front end has applied (0 = the initial fit)."""
        return self._generation

    @property
    def stats(self) -> dict:
        """Serving diagnostics: admission, lanes, batching, generations."""
        lanes = {
            name: {"batches": lane.batches, "served": lane.served}
            for name, lane in self._lanes.items()
        }
        return {
            "generation": self._generation,
            "refits": self._refits,
            "inflight_batches": self._inflight,
            "fused_requests": self._fused_requests,
            "largest_batch": self._largest_batch,
            "batch_cutoff": self._cutoff,
            "max_batch_requests": self._max_batch,
            "default_latency_budget": self._default_budget,
            "fixed_window_seconds": self._fixed_window,
            "admission": self._admission.stats,
            "routing": self._router.stats,
            "lanes": lanes,
            "closed": self._closing,
        }
