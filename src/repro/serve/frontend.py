"""The async serving front end: admission -> lanes -> deadline batcher.

:class:`AsyncServingFrontend` turns a :class:`~repro.core.api.ScoringSession`
into an ``asyncio`` service.  Each ``await frontend.submit(matrix)`` travels
through three stages:

1. **Admission** (:mod:`repro.serve.admission`): a bounded queue by depth
   and in-flight bytes; excess traffic is shed immediately with a typed
   :class:`~repro.serve.admission.Overloaded` instead of queueing
   unboundedly.
2. **Lanes** (:mod:`repro.serve.lanes`): delta-friendly requests (same
   width as the model, small churn) batch separately from cold traffic,
   so odd matrices never dilute the delta stream's fused batches.
3. **Deadline batching**: each lane's dispatcher coalesces pending
   requests and flushes when the *oldest request's latency budget is
   half-spent* (not after a fixed window), when the batch is full, or at
   shutdown -- the SLO-aware replacement for the fixed ``wait_seconds``
   sleep.  ``batch_cutoff="fixed"`` restores the fixed-window behaviour
   as a benchmark baseline.

Batches execute on a small thread pool through
:meth:`~repro.core.api.ScoringSession.score_batch`, so all coroutine
state stays confined to the event-loop thread (no locks) and the GIL is
released inside numpy while the loop keeps admitting traffic.

Refit-during-traffic (:meth:`AsyncServingFrontend.refit`) follows a
drain -> swap -> replay protocol: new batch dispatch is gated, in-flight
batches drain to zero, the session swaps generations via its own
``refit``/``refit_delta``, and only then does queued traffic replay --
so no request is ever scored against a mixed generation, and every
result carries the generation that scored it.

Fault tolerance (:mod:`repro.serve.resilience`): every admitted request
*terminates* -- with scores, a typed shed, or a typed failure -- and its
admission charge is released exactly once, no matter where a fault
lands.  A failing batch walks the degradation ladder (retried
delta-aware scoring -> cold micro-batch -> inline per-request cold
scoring), every rung of which is bit-identical to the reference path,
so faults can cost latency but never correctness.  Per-lane circuit
breakers shed or force-degrade traffic aimed at a persistently failing
lane, and per-attempt scoring timeouts keep a hung executor from
wedging the loop.  A refit that fails mid-swap leaves the session on
its old generation with the gate reopened -- serving resumes, the
caller gets the error.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Optional

import numpy as np

from repro.core import faults
from repro.core.api import BatchScoreOutcome, ScoringSession, check_refit_mode
from repro.core.observations import ObservationMatrix
from repro.serve.admission import (
    SHED_CIRCUIT_OPEN,
    SHED_CLOSED,
    AdmissionController,
    Overloaded,
)
from repro.serve.lanes import (
    COLD_LANE,
    DELTA_LANE,
    LANES,
    LaneRouter,
    expected_sources_of,
)
from repro.serve.resilience import CircuitBreaker, RetryPolicy

#: Valid ``batch_cutoff`` modes: deadline-aware (flush at half the oldest
#: budget) or the fixed coalescing window (the pre-serve baseline).
BATCH_CUTOFFS = ("deadline", "fixed")


def _swallow_late_result(future: "asyncio.Future[Any]") -> None:
    """Done-callback for abandoned (timed-out) scoring attempts.

    Retrieves a late exception so the event loop never logs it as
    never-retrieved; a late result is simply dropped.
    """
    if not future.cancelled():
        future.exception()


@dataclass(frozen=True)
class ServeResult:
    """One served request: scores plus serving metadata.

    ``generation`` counts the session's refits as seen by this front end
    (0 until the first :meth:`AsyncServingFrontend.refit`), so callers
    can pin exactly which model scored them.  Latencies are measured on
    the event loop's clock: ``queued_seconds`` from admission to batch
    dispatch, ``service_seconds`` inside the scoring pass, and
    ``latency_seconds`` end to end.
    """

    scores: np.ndarray
    lane: str
    generation: int
    batch_size: int
    queued_seconds: float
    service_seconds: float
    latency_seconds: float


class _Request:
    """One admitted request waiting in a lane."""

    __slots__ = (
        "observations",
        "future",
        "nbytes",
        "admitted_at",
        "flush_at",
        "settled",
    )

    def __init__(
        self,
        observations: ObservationMatrix,
        future: "asyncio.Future[ServeResult]",
        nbytes: int,
        admitted_at: float,
        flush_at: float,
    ) -> None:
        self.observations = observations
        self.future = future
        self.nbytes = nbytes
        self.admitted_at = admitted_at
        self.flush_at = flush_at
        # Flipped exactly once by _settle_result/_settle_error: the
        # admission charge is released at the same moment, so "every
        # request settles exactly once" is the accounting invariant.
        self.settled = False


class _LaneState:
    """Per-lane pending queue plus its dispatcher's wake-up event."""

    __slots__ = ("name", "pending", "event", "batches", "served")

    def __init__(self, name: str) -> None:
        self.name = name
        self.pending: list[_Request] = []
        self.event = asyncio.Event()
        self.batches = 0
        self.served = 0


class AsyncServingFrontend:
    """Admission-controlled, SLO-aware async serving over one session.

    Use as an async context manager (or call :meth:`start` / :meth:`close`
    explicitly)::

        async with AsyncServingFrontend(session) as frontend:
            scores = await frontend.submit(matrix, latency_budget=0.05)

    All coroutine methods must run on one event loop; scoring itself
    runs on an internal thread pool.  Scores are bit-identical to a
    direct ``session.score`` of the same matrix -- batching, lanes, and
    refit gating change scheduling, never values.
    """

    def __init__(
        self,
        session: ScoringSession,
        *,
        max_queue_depth: int = 256,
        max_inflight_bytes: Optional[int] = None,
        max_batch_requests: int = 64,
        default_latency_budget: float = 0.05,
        batch_cutoff: str = "deadline",
        fixed_window_seconds: float = 0.002,
        small_churn_fraction: float = 0.25,
        executor_workers: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
        scoring_timeout: Optional[float] = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 0.5,
        breaker_policy: str = "degrade",
        checkpointer: Optional[Any] = None,
    ) -> None:
        if max_batch_requests < 1:
            raise ValueError(
                f"max_batch_requests must be >= 1, got {max_batch_requests}"
            )
        if default_latency_budget <= 0.0:
            raise ValueError(
                "default_latency_budget must be positive, got "
                f"{default_latency_budget}"
            )
        if batch_cutoff not in BATCH_CUTOFFS:
            raise ValueError(
                f"batch_cutoff must be one of {BATCH_CUTOFFS}, got "
                f"{batch_cutoff!r}"
            )
        if fixed_window_seconds < 0.0:
            raise ValueError(
                "fixed_window_seconds must be non-negative, got "
                f"{fixed_window_seconds}"
            )
        if executor_workers < 1:
            raise ValueError(
                f"executor_workers must be >= 1, got {executor_workers}"
            )
        if scoring_timeout is not None and scoring_timeout <= 0.0:
            raise ValueError(
                f"scoring_timeout must be positive or None, got "
                f"{scoring_timeout}"
            )
        if breaker_policy not in ("degrade", "shed"):
            raise ValueError(
                "breaker_policy must be 'degrade' or 'shed', got "
                f"{breaker_policy!r}"
            )
        self._session = session
        # Optional durability (repro.persist.Checkpointer).  The front
        # end itself never writes: attaching it to the session routes
        # every drain->swap refit through the session's prepare/commit
        # hooks, so admitted refit inputs hit the WAL before the build
        # and each published generation appends a publish record (and,
        # on cadence, a snapshot) -- all inside the session's refit lock.
        self._checkpointer = checkpointer
        self._max_batch = int(max_batch_requests)
        self._default_budget = float(default_latency_budget)
        self._cutoff = batch_cutoff
        self._fixed_window = float(fixed_window_seconds)
        self._admission = AdmissionController(
            max_queue_depth=max_queue_depth,
            max_inflight_bytes=max_inflight_bytes,
        )
        self._router = LaneRouter.for_session(
            session, small_churn_fraction=small_churn_fraction
        )
        self._executor_workers = int(executor_workers)
        # Resilience: retries on by default (bounded, retry-safe errors
        # only -- a fault-free run never enters the retry path, so the
        # default changes no healthy-path behaviour).  Pass
        # RetryPolicy(max_retries=0) to disable.
        self._retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self._scoring_timeout = (
            None if scoring_timeout is None else float(scoring_timeout)
        )
        self._breaker_policy = breaker_policy
        self._breakers = {
            name: CircuitBreaker(
                failure_threshold=breaker_threshold,
                cooldown_seconds=breaker_cooldown,
                clock=time.monotonic,
            )
            for name in LANES
        }
        # Loop-confined state, created by start(); no locks by design --
        # every mutation below happens on the event-loop thread.
        self._lanes: dict[str, _LaneState] = {}
        self._tasks: list["asyncio.Task[None]"] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._refit_gate: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._refit_serialize: Optional[asyncio.Lock] = None
        self._started = False
        self._closing = False
        self._inflight = 0
        self._generation = 0
        self._refits = 0
        self._fused_requests = 0
        self._largest_batch = 0
        self._retries = 0
        self._degraded_batches = 0
        self._forced_degrades = 0
        self._shed_circuit = 0
        self._refit_failures = 0

    def __getstate__(self) -> dict:
        raise TypeError(
            "AsyncServingFrontend is process-local (it owns an executor "
            "and event-loop primitives); build one per process instead "
            "of pickling it"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def __aenter__(self) -> "AsyncServingFrontend":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def start(self) -> None:
        """Start the per-lane dispatchers (idempotent until closed)."""
        if self._closing:
            raise RuntimeError("a closed frontend cannot be restarted")
        if self._started:
            return
        self._refit_gate = asyncio.Event()
        self._refit_gate.set()
        self._idle = asyncio.Event()
        self._idle.set()
        self._refit_serialize = asyncio.Lock()
        if self._checkpointer is not None:
            self._session.attach_checkpointer(self._checkpointer)
        self._executor = ThreadPoolExecutor(
            max_workers=self._executor_workers,
            thread_name_prefix="repro-serve",
        )
        for name in LANES:
            lane = _LaneState(name)
            self._lanes[name] = lane
            self._tasks.append(
                asyncio.ensure_future(self._dispatch_lane(lane))
            )
        self._started = True

    async def close(self) -> None:
        """Graceful shutdown: flush every queued request, then stop.

        Pending traffic is served (the dispatchers flush their queues
        immediately rather than waiting out any window); submits racing
        or following the close are shed with ``Overloaded("closed")``.
        Idempotent.
        """
        if self._closing:
            return
        self._closing = True
        if not self._started:
            return
        for lane in self._lanes.values():
            lane.event.set()
        await asyncio.gather(*self._tasks)
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    async def submit(
        self,
        observations: ObservationMatrix,
        latency_budget: Optional[float] = None,
    ) -> np.ndarray:
        """Score ``observations``; returns the per-triple score vector.

        Raises :class:`~repro.serve.admission.Overloaded` when shed.
        """
        result = await self.submit_detailed(
            observations, latency_budget=latency_budget
        )
        return result.scores

    async def submit_detailed(
        self,
        observations: ObservationMatrix,
        latency_budget: Optional[float] = None,
    ) -> ServeResult:
        """Like :meth:`submit`, returning the full :class:`ServeResult`."""
        if not self._started:
            raise RuntimeError(
                "start() the frontend (or enter its async context) "
                "before submitting"
            )
        if self._closing:
            raise Overloaded(SHED_CLOSED, 0.0, 0.0)
        budget = (
            self._default_budget if latency_budget is None
            else float(latency_budget)
        )
        if budget <= 0.0:
            raise ValueError(
                f"latency_budget must be positive, got {latency_budget}"
            )
        nbytes = int(
            observations.provides.nbytes + observations.coverage.nbytes
        )
        self._admission.admit(nbytes)
        loop = asyncio.get_running_loop()
        now = loop.time()
        try:
            lane_name = self._admit_lane(self._router.classify(observations))
            lane = self._lanes[lane_name]
            if self._cutoff == "deadline":
                # SLO-aware cut-off: leave half the budget for the
                # scoring pass itself.
                flush_at = now + budget / 2.0
            else:
                flush_at = now + self._fixed_window
            request = _Request(
                observations,
                loop.create_future(),
                nbytes,
                admitted_at=now,
                flush_at=flush_at,
            )
            lane.pending.append(request)
            lane.event.set()
        except BaseException:
            # Admission was charged but the request never reached a
            # lane; dispatch can no longer release it, so do it here.
            # (Covers circuit-open shedding too: _admit_lane raises
            # before the request object exists.)
            self._admission.release(nbytes)
            raise
        return await request.future

    def _admit_lane(self, lane_name: str) -> str:
        """Apply the lane's circuit breaker: pass, force-degrade, or shed.

        An open delta-lane breaker under ``breaker_policy="degrade"``
        reroutes the request to the cold lane when cold serving is
        healthy -- degradation is bit-identical, so rerouting beats
        shedding.  Everything else (cold lane open, ``"shed"`` policy,
        both lanes open) sheds with a typed
        ``Overloaded("circuit_open")``.
        """
        breaker = self._breakers[lane_name]
        if breaker.allow():
            return lane_name
        if (
            self._breaker_policy == "degrade"
            and lane_name == DELTA_LANE
            and self._breakers[COLD_LANE].allow()
        ):
            self._forced_degrades += 1
            return COLD_LANE
        self._shed_circuit += 1
        raise Overloaded(
            SHED_CIRCUIT_OPEN,
            float(breaker.failure_threshold),
            float(breaker.stats["consecutive_failures"]),
        )

    async def refit(
        self,
        observations: ObservationMatrix,
        labels: np.ndarray,
        mode: str = "delta",
        train_mask: Optional[np.ndarray] = None,
        **overrides: Any,
    ) -> int:
        """Swap model generations under live traffic (drain -> swap -> replay).

        Gates new batch dispatch, waits for in-flight batches to drain,
        runs the session's :meth:`~repro.core.api.ScoringSession.refit`
        (``mode="cold"``) or
        :meth:`~repro.core.api.ScoringSession.refit_delta`
        (``mode="delta"``) on the executor, rebinds the lane router to
        the new generation, then reopens the gate so queued requests
        replay against it.  Returns the new generation number.
        """
        mode = check_refit_mode(mode)
        if not self._started:
            raise RuntimeError("start() the frontend before refitting")
        if self._closing:
            raise RuntimeError("a closing frontend cannot refit")
        assert self._refit_serialize is not None
        assert self._refit_gate is not None
        assert self._idle is not None
        assert self._executor is not None
        loop = asyncio.get_running_loop()
        async with self._refit_serialize:
            self._refit_gate.clear()
            try:
                while self._inflight:
                    self._idle.clear()
                    await self._idle.wait()
                refit_call = (
                    self._session.refit_delta if mode == "delta"
                    else self._session.refit
                )
                try:
                    await loop.run_in_executor(
                        self._executor,
                        partial(
                            refit_call,
                            observations,
                            labels,
                            train_mask=train_mask,
                            **overrides,
                        ),
                    )
                except BaseException:
                    # The session rolled back to its old generation (its
                    # refit publishes atomically); count the failure and
                    # let the finally reopen the gate so queued traffic
                    # replays against the unchanged generation.
                    self._refit_failures += 1
                    raise
                self._generation += 1
                self._refits += 1
                self._router.rebind(expected_sources_of(self._session))
            finally:
                self._refit_gate.set()
        return self._generation

    # ------------------------------------------------------------------
    # Internals (event-loop thread only)
    # ------------------------------------------------------------------

    def _batch_cutoff_time(self, lane: _LaneState) -> float:
        """When the lane's current batch must flush.

        Deadline mode: the earliest pending half-budget deadline.  Fixed
        mode: the oldest request's arrival plus the fixed window (the
        pre-serve baseline -- later arrivals and full queues do not move
        it up).
        """
        if self._cutoff == "fixed":
            return lane.pending[0].flush_at
        return min(request.flush_at for request in lane.pending)

    async def _dispatch_lane(self, lane: _LaneState) -> None:
        """One lane's dispatcher: coalesce, cut at the deadline, execute."""
        loop = asyncio.get_running_loop()
        try:
            while True:
                if not lane.pending:
                    if self._closing:
                        return
                    lane.event.clear()
                    await lane.event.wait()
                    continue
                now = loop.time()
                cutoff = self._batch_cutoff_time(lane)
                full = len(lane.pending) >= self._max_batch
                flush = (
                    self._closing
                    or now >= cutoff
                    # A full batch ships immediately under the deadline
                    # cut-off; the fixed baseline deliberately waits the
                    # window out (that is the burst bug being benchmarked).
                    or (full and self._cutoff == "deadline")
                )
                if not flush:
                    lane.event.clear()
                    try:
                        await asyncio.wait_for(
                            lane.event.wait(), cutoff - now
                        )
                    except asyncio.TimeoutError:
                        pass
                    continue
                batch = lane.pending[: self._max_batch]
                del lane.pending[: len(batch)]
                await self._execute_batch(lane, batch)
        except BaseException as error:
            # A dying dispatcher (cancellation, a bug in the loop above)
            # must not strand its queue: fail every still-pending request
            # so callers unblock and their admission charges drain, then
            # propagate.  _execute_batch settles its own dequeued batch.
            for request in lane.pending:
                wrapped = RuntimeError(
                    f"{lane.name} lane dispatcher crashed before scoring "
                    "this request"
                )
                wrapped.__cause__ = error
                self._settle_error(request, wrapped)
            lane.pending.clear()
            raise

    async def _execute_batch(
        self, lane: _LaneState, batch: list[_Request]
    ) -> None:
        """Score one batch on the executor and resolve its futures."""
        assert self._refit_gate is not None
        assert self._idle is not None
        assert self._executor is not None
        # Gate check and in-flight increment must share one synchronous
        # block: a refit clearing the gate between our wake-up and the
        # dispatch would otherwise race the drain.
        while True:
            if self._refit_gate.is_set():
                self._inflight += 1
                break
            await self._refit_gate.wait()
        loop = asyncio.get_running_loop()
        try:
            generation = self._generation
            dispatched_at = loop.time()
            breaker = self._breakers[lane.name]
            try:
                faults.trip(faults.SITE_DISPATCH)
                outcome = await self._score_resilient(batch)
            except Exception as error:  # fault-barrier: the dispatcher keeps serving; every request in the batch gets its own typed failure
                breaker.record_failure()
                for request in batch:
                    wrapped = RuntimeError(
                        "serving batch failed before scoring this "
                        "request"
                    )
                    wrapped.__cause__ = error
                    self._settle_error(request, wrapped)
                return
            breaker.record_success()
            completed_at = loop.time()
            lane.batches += 1
            lane.served += len(batch)
            self._fused_requests += outcome.fused_requests
            self._largest_batch = max(self._largest_batch, len(batch))
            for request, scores, request_error in zip(
                batch, outcome.scores, outcome.errors
            ):
                if request_error is not None:
                    self._settle_error(request, request_error)
                else:
                    assert scores is not None
                    self._settle_result(
                        request,
                        ServeResult(
                            scores=scores,
                            lane=lane.name,
                            generation=generation,
                            batch_size=len(batch),
                            queued_seconds=(
                                dispatched_at - request.admitted_at
                            ),
                            service_seconds=completed_at - dispatched_at,
                            latency_seconds=(
                                completed_at - request.admitted_at
                            ),
                        ),
                    )
        finally:
            # Accounting backstop: any request not settled above (an
            # unexpected unwind, including task cancellation mid-await)
            # still releases its admission charge and fails its caller --
            # settled requests are untouched, settlement is exactly-once.
            for request in batch:
                if not request.settled:
                    self._settle_error(
                        request,
                        RuntimeError(
                            "serving batch was abandoned before settling "
                            "this request"
                        ),
                    )
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    def _settle_result(self, request: _Request, result: ServeResult) -> None:
        """Resolve a request exactly once: release admission, set scores.

        Safe on a cancelled future (the charge still releases; the
        result is dropped) and a second settle attempt is a no-op --
        which is what lets every error path call it defensively.
        """
        if request.settled:
            return
        request.settled = True
        self._admission.release(request.nbytes)
        if not request.future.done():
            request.future.set_result(result)

    def _settle_error(self, request: _Request, error: BaseException) -> None:
        """Fail a request exactly once: release admission, set the error."""
        if request.settled:
            return
        request.settled = True
        self._admission.release(request.nbytes)
        if not request.future.done():
            request.future.set_exception(error)

    async def _score_resilient(self, batch: "list[_Request]") -> Any:
        """Score a batch down the degradation ladder; every rung bit-identical.

        Rung 0: the fast path -- fused, delta-aware ``score_batch`` --
        retried per :class:`RetryPolicy` with backoff.  Rung 1: the cold
        micro-batch (same coalescing, delta layer bypassed), likewise
        retried -- for when the delta/fused machinery is what is
        failing.  Rung 2: inline per-request cold scoring with errors
        captured per request, so a batch can no longer fail outright --
        the final rung trades every optimisation for certainty, and
        because each rung is exactness-preserving the caller cannot tell
        (except by latency) which rung served it.
        """
        matrices = [request.observations for request in batch]
        try:
            return await self._attempt_with_retries(
                partial(self._session.score_batch, matrices)
            )
        except Exception:  # fault-barrier: rung 0 exhausted its retries; degrade to the cold micro-batch rung
            self._degraded_batches += 1
        try:
            return await self._attempt_with_retries(
                partial(self._session.score_batch, matrices, cold=True)
            )
        except Exception:  # fault-barrier: rung 1 failed too; the inline-serial rung below cannot fail a whole batch
            pass
        scores: "list[Optional[np.ndarray]]" = [None] * len(matrices)
        errors: "list[Optional[Exception]]" = [None] * len(matrices)
        for i, matrix in enumerate(matrices):
            try:
                scores[i] = await self._score_on_executor(
                    partial(self._session.score_cold, matrix)
                )
            except Exception as error:  # fault-barrier: per-request typed failure on the last rung; the request terminates either way
                errors[i] = error
        return BatchScoreOutcome(scores, errors, 0)

    async def _attempt_with_retries(self, call: Any) -> Any:
        """One ladder rung: run ``call`` with bounded, backoff'd retries."""
        policy = self._retry_policy
        attempt = 0
        while True:
            try:
                return await self._score_on_executor(call)
            except Exception as error:
                if (
                    attempt >= policy.max_retries
                    or not policy.is_retryable(error)
                ):
                    raise
                self._retries += 1
                await asyncio.sleep(policy.backoff_seconds(attempt))
                attempt += 1

    async def _score_on_executor(self, call: Any) -> Any:
        """Run ``call`` on the scoring executor, under the attempt timeout.

        A timeout abandons the *await*, not the thread -- executor jobs
        cannot be cancelled once running (``wait_for`` would block on
        them), so the attempt future is left to finish on its own and
        its late result dropped; settlement idempotency makes that safe.
        The raised ``TimeoutError`` is retry-safe, so a hung attempt
        walks the same retry/degradation path as a crashed one.
        """
        assert self._executor is not None
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._executor, call)
        if self._scoring_timeout is None:
            return await future
        done, _pending = await asyncio.wait(
            {future}, timeout=self._scoring_timeout
        )
        if done:
            return future.result()
        future.add_done_callback(_swallow_late_result)
        raise asyncio.TimeoutError(
            f"scoring attempt exceeded its {self._scoring_timeout}s budget"
        )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    @property
    def session(self) -> ScoringSession:
        return self._session

    @property
    def generation(self) -> int:
        """How many refits this front end has applied (0 = the initial fit)."""
        return self._generation

    @property
    def stats(self) -> dict:
        """Serving diagnostics: admission, lanes, batching, generations."""
        lanes = {
            name: {"batches": lane.batches, "served": lane.served}
            for name, lane in self._lanes.items()
        }
        return {
            "generation": self._generation,
            "refits": self._refits,
            "inflight_batches": self._inflight,
            "fused_requests": self._fused_requests,
            "largest_batch": self._largest_batch,
            "batch_cutoff": self._cutoff,
            "max_batch_requests": self._max_batch,
            "default_latency_budget": self._default_budget,
            "fixed_window_seconds": self._fixed_window,
            "admission": self._admission.stats,
            "routing": self._router.stats,
            "lanes": lanes,
            "checkpoint": (
                self._checkpointer.stats
                if self._checkpointer is not None
                else {}
            ),
            "resilience": {
                "retries": self._retries,
                "degraded_batches": self._degraded_batches,
                "forced_degrades": self._forced_degrades,
                "shed_circuit_open": self._shed_circuit,
                "refit_failures": self._refit_failures,
                "scoring_timeout": self._scoring_timeout,
                "breaker_policy": self._breaker_policy,
                "breakers": {
                    name: breaker.stats
                    for name, breaker in self._breakers.items()
                },
            },
            "closed": self._closing,
        }
