"""Async serving front end: admission control, lanes, SLO-aware batching.

The serving leg of the reproduction (see ``docs/architecture.md``,
"Serving front end"): an ``asyncio`` layer over
:class:`~repro.core.api.ScoringSession` that sheds overload instead of
queueing it, routes delta-friendly traffic into its own batching lane,
flushes micro-batches on latency-budget deadlines, swaps model
generations under live traffic without ever scoring a request against a
mixed generation, and survives faults (dead workers, injected failures,
hung scoring) through bounded retries, per-lane circuit breakers, and a
bit-identical degradation ladder (:mod:`repro.serve.resilience`).
"""

from repro.serve.admission import (
    SHED_CIRCUIT_OPEN,
    SHED_CLOSED,
    SHED_INFLIGHT_BYTES,
    SHED_QUEUE_DEPTH,
    AdmissionController,
    Overloaded,
)
from repro.serve.frontend import (
    BATCH_CUTOFFS,
    AsyncServingFrontend,
    ServeResult,
)
from repro.serve.lanes import (
    COLD_LANE,
    DEFAULT_SMALL_CHURN_FRACTION,
    DELTA_LANE,
    LANES,
    LaneRouter,
    expected_sources_of,
)
from repro.serve.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    RETRYABLE_ERRORS,
    CircuitBreaker,
    RetryPolicy,
    is_retryable,
)

__all__ = [
    "AdmissionController",
    "AsyncServingFrontend",
    "BATCH_CUTOFFS",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "COLD_LANE",
    "CircuitBreaker",
    "DEFAULT_SMALL_CHURN_FRACTION",
    "DELTA_LANE",
    "LANES",
    "LaneRouter",
    "Overloaded",
    "RETRYABLE_ERRORS",
    "RetryPolicy",
    "SHED_CIRCUIT_OPEN",
    "SHED_CLOSED",
    "SHED_INFLIGHT_BYTES",
    "SHED_QUEUE_DEPTH",
    "ServeResult",
    "expected_sources_of",
    "is_retryable",
]
