"""Priority lanes: route delta-friendly traffic apart from cold traffic.

The delta engine (:mod:`repro.core.deltas`) is at its best on a stream
of *similar* requests: same source count as the fitted model, few dirty
columns against the previous request.  Interleaving wildly different
matrices into that stream costs twice -- the odd matrices cannot join
the fused batch (width mismatch) and their patterns dilute the memo.

:class:`LaneRouter` therefore classifies each incoming request into one
of two lanes the front end batches independently:

- ``"delta"`` -- same width as the fitted model and small churn against
  the lane's previous request (measured exactly, via the packed-word
  XOR diff of :func:`repro.core.deltas.dirty_columns`);
- ``"cold"`` -- everything else: width mismatches, high-churn requests,
  and all traffic for fusers without the ``pattern_batch_invariant``
  guarantee (their batches score individually anyway).

Routing changes *where* a request is batched, never *how* it is scored
-- every lane scores through the same session, so lane placement cannot
affect scores (bit-identity is pinned by ``tests/test_serve*.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.deltas import dirty_columns
from repro.core.fusion import ModelBasedFuser
from repro.core.locktrace import make_lock
from repro.core.observations import ObservationMatrix

if TYPE_CHECKING:
    from repro.core.api import ScoringSession

#: Lane names, in dispatch-priority order (delta first).
DELTA_LANE = "delta"
COLD_LANE = "cold"
LANES = (DELTA_LANE, COLD_LANE)

#: Default churn bound for the delta lane: at most this fraction of the
#: incoming request's columns may differ from the lane's previous
#: request.  Mirrors the delta engine's own notion of a "small" diff.
DEFAULT_SMALL_CHURN_FRACTION = 0.25


def expected_sources_of(session: "ScoringSession") -> Optional[int]:
    """The source count fused batches require, or ``None`` if unfusable.

    ``None`` (EM, PrecRec, aggressive -- no ``pattern_batch_invariant``
    guarantee) means no request can share a fused pass, so lane routing
    degenerates to a single cold lane.
    """
    fuser = session.fuser
    if isinstance(fuser, ModelBasedFuser) and fuser.pattern_batch_invariant:
        return int(fuser.model.n_sources)
    return None


class LaneRouter:
    """Classify requests into the delta or cold lane (see module doc).

    The router keeps one snapshot per delta lane -- the last matrix it
    routed there -- and measures each candidate's churn against it with
    the exact packed-word diff.  The first same-width request seeds the
    snapshot and rides the delta lane by definition (churn zero against
    itself would be meaningless; it *starts* the stream).

    ``rebind`` repoints the router at a new model generation: the width
    expectation is replaced and the snapshot dropped (it belonged to the
    previous generation's stream), while shed/served counters survive.
    """

    def __init__(
        self,
        expected_sources: Optional[int],
        small_churn_fraction: float = DEFAULT_SMALL_CHURN_FRACTION,
    ) -> None:
        if not 0.0 <= small_churn_fraction <= 1.0:
            raise ValueError(
                "small_churn_fraction must be in [0, 1], got "
                f"{small_churn_fraction}"
            )
        self._expected_sources = expected_sources
        self._small_churn = float(small_churn_fraction)
        self._lock = make_lock("LaneRouter._lock")
        # guarded-by: _lock
        self._snapshot: Optional[ObservationMatrix] = None
        # guarded-by: _lock
        self._delta_routed = 0
        # guarded-by: _lock
        self._cold_routed = 0
        # guarded-by: _lock
        self._width_mismatches = 0
        # guarded-by: _lock
        self._churn_evictions = 0

    def __getstate__(self) -> dict:
        raise TypeError(
            "LaneRouter is process-local (it owns a lock over live "
            "routing state); build one per process instead of pickling it"
        )

    @classmethod
    def for_session(
        cls,
        session: "ScoringSession",
        small_churn_fraction: float = DEFAULT_SMALL_CHURN_FRACTION,
    ) -> "LaneRouter":
        """A router matching ``session``'s live fuser generation."""
        return cls(
            expected_sources_of(session),
            small_churn_fraction=small_churn_fraction,
        )

    @property
    def expected_sources(self) -> Optional[int]:
        return self._expected_sources

    def rebind(self, expected_sources: Optional[int]) -> None:
        """Point the router at a new model generation (drops the snapshot)."""
        with self._lock:
            self._expected_sources = expected_sources
            self._snapshot = None

    def classify(self, observations: ObservationMatrix) -> str:
        """The lane for ``observations``: :data:`DELTA_LANE` or :data:`COLD_LANE`."""
        expected = self._expected_sources
        if expected is None or observations.n_sources != expected:
            with self._lock:
                self._cold_routed += 1
                if expected is not None:
                    self._width_mismatches += 1
            return COLD_LANE
        with self._lock:
            snapshot = self._snapshot
            if snapshot is None:
                self._snapshot = observations
                self._delta_routed += 1
                return DELTA_LANE
            dirty = dirty_columns(snapshot, observations)
            total = max(observations.n_triples, snapshot.n_triples, 1)
            if dirty is not None and len(dirty) <= self._small_churn * total:
                self._snapshot = observations
                self._delta_routed += 1
                return DELTA_LANE
            # High churn: leave the snapshot in place -- the delta
            # stream continues from its last member, this request rides
            # the cold lane.
            self._churn_evictions += 1
            self._cold_routed += 1
            return COLD_LANE

    @property
    def stats(self) -> dict:
        """Routing counters for reports and benchmarks."""
        with self._lock:
            return {
                "delta_routed": self._delta_routed,
                "cold_routed": self._cold_routed,
                "width_mismatches": self._width_mismatches,
                "churn_evictions": self._churn_evictions,
                "expected_sources": self._expected_sources,
                "small_churn_fraction": self._small_churn,
            }
