"""Admission control for the async serving front end.

A serving system that queues unboundedly converts overload into
unbounded latency: every queued request waits behind every other one,
p99 explodes, and by the time a request is served its caller has long
timed out.  The alternative implemented here is *load shedding*: a
bounded request queue (by depth and by in-flight payload bytes) that
rejects excess traffic immediately with a typed :class:`Overloaded`
error, so callers can back off or retry against another replica while
admitted requests keep their latency budget.

The controller is deliberately tiny and synchronous -- one lock, two
counters -- so the front end can consult it on the event-loop thread
without awaiting.
"""

from __future__ import annotations

from typing import Optional

from repro.core.locktrace import make_lock

#: ``Overloaded.reason`` values.  ``circuit_open`` is raised by the front
#: end (not this controller) when a lane's circuit breaker sheds traffic
#: -- see :mod:`repro.serve.resilience`.
SHED_QUEUE_DEPTH = "queue_depth"
SHED_INFLIGHT_BYTES = "inflight_bytes"
SHED_CLOSED = "closed"
SHED_CIRCUIT_OPEN = "circuit_open"


class Overloaded(RuntimeError):
    """A request was shed by admission control instead of queued.

    Attributes mirror the rejecting limit so callers (and tests) can
    tell *why* they were shed: ``reason`` is one of ``"queue_depth"``,
    ``"inflight_bytes"``, ``"closed"``, or ``"circuit_open"``; ``limit``
    is the configured bound and ``value`` what admitting the request
    would have made the tracked quantity (for ``circuit_open``: the
    breaker's failure threshold and its consecutive-failure count).
    """

    def __init__(self, reason: str, limit: float, value: float) -> None:
        super().__init__(
            f"request shed by admission control ({reason}: "
            f"admitting would reach {value:g} against limit {limit:g})"
        )
        self.reason = reason
        self.limit = limit
        self.value = value


class AdmissionController:
    """Bounded-queue admission: admit within limits, shed beyond them.

    Tracks two quantities from :meth:`admit` until the matching
    :meth:`release`: the number of admitted-but-unfinished requests
    (*depth*) and their summed payload bytes (*in-flight bytes*).  A
    request that would push either past its limit raises
    :class:`Overloaded` and changes nothing.

    ``max_inflight_bytes=None`` disables the byte bound; depth is always
    bounded (that is the point).  A single request larger than
    ``max_inflight_bytes`` can never be admitted -- size the byte limit
    to hold at least one worst-case request.
    """

    def __init__(
        self,
        max_queue_depth: int = 256,
        max_inflight_bytes: Optional[int] = None,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if max_inflight_bytes is not None and max_inflight_bytes < 1:
            raise ValueError(
                "max_inflight_bytes must be >= 1 (or None), got "
                f"{max_inflight_bytes}"
            )
        self._max_depth = int(max_queue_depth)
        self._max_bytes = (
            None if max_inflight_bytes is None else int(max_inflight_bytes)
        )
        self._lock = make_lock("AdmissionController._lock")
        # guarded-by: _lock
        self._depth = 0
        # guarded-by: _lock
        self._inflight_bytes = 0
        # guarded-by: _lock
        self._admitted = 0
        # guarded-by: _lock
        self._shed_depth = 0
        # guarded-by: _lock
        self._shed_bytes = 0
        # guarded-by: _lock
        self._peak_depth = 0
        # guarded-by: _lock
        self._peak_inflight_bytes = 0

    def __getstate__(self) -> dict:
        raise TypeError(
            "AdmissionController is process-local (it owns a lock over "
            "live in-flight counters); build one per process instead of "
            "pickling it"
        )

    def admit(self, nbytes: int) -> None:
        """Admit a request of ``nbytes`` payload or raise :class:`Overloaded`.

        On success the request occupies one depth slot and ``nbytes`` of
        the in-flight budget until :meth:`release` is called with the
        same size.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        with self._lock:
            depth = self._depth + 1
            if depth > self._max_depth:
                self._shed_depth += 1
                raise Overloaded(SHED_QUEUE_DEPTH, self._max_depth, depth)
            inflight = self._inflight_bytes + nbytes
            if self._max_bytes is not None and inflight > self._max_bytes:
                self._shed_bytes += 1
                raise Overloaded(SHED_INFLIGHT_BYTES, self._max_bytes, inflight)
            self._depth = depth
            self._inflight_bytes = inflight
            self._admitted += 1
            self._peak_depth = max(self._peak_depth, depth)
            self._peak_inflight_bytes = max(
                self._peak_inflight_bytes, inflight
            )

    def release(self, nbytes: int) -> None:
        """Return an admitted request's slot and bytes (exactly once)."""
        with self._lock:
            self._depth -= 1
            self._inflight_bytes -= nbytes
            if self._depth < 0 or self._inflight_bytes < 0:
                raise RuntimeError(
                    "admission release without a matching admit "
                    f"(depth={self._depth}, bytes={self._inflight_bytes})"
                )

    @property
    def stats(self) -> dict:
        """Occupancy and shed counters for reports and benchmarks."""
        with self._lock:
            return {
                "depth": self._depth,
                "inflight_bytes": self._inflight_bytes,
                "admitted": self._admitted,
                "shed_queue_depth": self._shed_depth,
                "shed_inflight_bytes": self._shed_bytes,
                "peak_depth": self._peak_depth,
                "peak_inflight_bytes": self._peak_inflight_bytes,
                "max_queue_depth": self._max_depth,
                "max_inflight_bytes": self._max_bytes,
            }
