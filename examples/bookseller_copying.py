"""Bookseller catalogues: correlation clusters and copy detection at scale.

Models the paper's BOOK scenario: hundreds of seller sources list
book-author triples; cliques of sellers share upstream feeds (the paper
finds clusters of sizes {22, 3, 2} on true triples and {22, 3, 2, 2} on
false triples); books have *multiple* true authors, which is why the
open-world multi-truth semantics matters.

The script:

1. generates the BOOK-scale dataset (333 sellers, the published gold
   composition of 482 true / 935 false author triples);
2. discovers the correlation clusters and compares them with the planted
   cliques;
3. fuses with the clustered PrecRecCorr (the paper's treatment for wide
   source sets) against PrecRec and the single-truth AccuCopy comparator.

Run:  python examples/bookseller_copying.py       (about a minute)
"""

from __future__ import annotations

import time

from repro import fit_model
from repro.baselines import AccuCopyFuser
from repro.core import ClusteredCorrelationFuser, PrecRecFuser
from repro.core.clustering import discovered_correlation_groups
from repro.data import book_dataset
from repro.eval import binary_metrics, format_table


def main() -> None:
    dataset = book_dataset(seed=42)
    print(dataset.summary())
    planted_true = dataset.metadata["true_clusters"]
    planted_false = dataset.metadata["false_clusters"]
    print(
        f"planted cliques: true sizes {[len(c) for c in planted_true]}, "
        f"false sizes {[len(c) for c in planted_false]}"
    )
    print()

    model = fit_model(dataset.observations, dataset.labels)
    groups = discovered_correlation_groups(model)
    print(
        f"discovered     : true sizes {[len(g) for g in groups['true']]}, "
        f"false sizes {[len(g) for g in groups['false']]}"
    )
    shared = set(map(frozenset, groups["true"])) & set(
        map(frozenset, groups["false"])
    )
    print(f"clusters shared between sides: {sorted(map(sorted, shared))}")
    print("(the paper finds exactly one two-seller copying pair on both sides)")
    print()

    rows = []
    fusers = [
        ("PrecRec", PrecRecFuser(model, decision_prior=0.5)),
        (
            "PrecRecCorr (clustered)",
            ClusteredCorrelationFuser(
                model, decision_prior=0.5, elastic_level=1, exact_cluster_limit=8
            ),
        ),
        ("AccuCopy (single truth)", AccuCopyFuser(iterations=3)),
    ]
    for name, fuser in fusers:
        start = time.perf_counter()
        scores = fuser.score(dataset.observations)
        elapsed = time.perf_counter() - start
        threshold = model.prior if name != "AccuCopy (single truth)" else 0.5
        metrics = binary_metrics(scores >= threshold - 1e-9, dataset.labels)
        rows.append([name, metrics.precision, metrics.recall, metrics.f1, elapsed])
    print(
        format_table(
            ["method", "precision", "recall", "F1", "time(s)"], rows, float_digits=3
        )
    )
    print()
    print(
        "AccuCopy reproduces the paper's Section 5.1 contrast: copy detection\n"
        "buys high precision, but single-truth semantics and vote discounting\n"
        "cost recall on multi-author books -- the case the correlation model\n"
        "handles natively."
    )


if __name__ == "__main__":
    main()
