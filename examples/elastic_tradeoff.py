"""The elastic dial: trading accuracy for computation (Section 4.3).

Exact correlation-aware fusion enumerates every subset of a triple's
non-providers -- exponential in the source count.  The elastic approximation
repairs the linear-time aggressive estimate level by level; this script
measures both sides of the dial on one correlated workload:

- F-measure per approximation level (the paper's Figure 5a series);
- wall-clock cost per level (the paper's Proposition 4.11: O(n^lambda)).

Run:  python examples/elastic_tradeoff.py
"""

from __future__ import annotations

import time

from repro import fit_model
from repro.core import AggressiveFuser, ElasticFuser, ExactCorrelationFuser
from repro.data import CorrelationGroup, SyntheticConfig, generate, uniform_sources
from repro.eval import binary_metrics, format_table


def main() -> None:
    config = SyntheticConfig(
        sources=uniform_sources(10, precision=0.65, recall=0.45),
        n_triples=1500,
        true_fraction=0.5,
        groups=(
            CorrelationGroup(members=(0, 1, 2, 3), mode="overlap_false", strength=0.9),
            CorrelationGroup(members=(4, 5, 6), mode="overlap_true", strength=0.9),
        ),
    )
    dataset = generate(config, seed=55)
    print(dataset.summary())
    print()

    model = fit_model(dataset.observations, dataset.labels)
    ladder = [("aggressive (linear)", AggressiveFuser(model))]
    ladder += [
        (f"elastic level {k}", ElasticFuser(model, level=k)) for k in range(6)
    ]
    ladder.append(("exact (exponential)", ExactCorrelationFuser(model)))

    rows = []
    for name, fuser in ladder:
        start = time.perf_counter()
        scores = fuser.score(dataset.observations)
        elapsed = time.perf_counter() - start
        metrics = binary_metrics(scores >= model.prior - 1e-9, dataset.labels)
        rows.append([name, metrics.f1, elapsed])
    print(format_table(["approximation", "F-measure", "time(s)"], rows))
    print()
    print(
        "A few levels recover most of the exact solution's quality at a\n"
        "fraction of its cost -- the trade-off the paper tunes in Figure 5,\n"
        "where level 3 halves the runtime of the exact computation."
    )


if __name__ == "__main__":
    main()
