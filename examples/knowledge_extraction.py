"""Knowledge extraction: fusing the output of correlated extractors.

The paper's motivating domain (Section 1): several extraction systems
process the same Web corpus; systems sharing extraction *patterns* make the
same decisions on the sentences those patterns match -- positive correlation
without copying -- and systems focusing on different sentence shapes are
complementary -- negative correlation.

This script builds that pipeline end-to-end with the extraction simulator:

1. simulate a 3000-sentence corpus and six extractors with overlapping
   pattern sets;
2. discover the pattern-sharing structure from the data alone (no knowledge
   of the extractors' internals, exactly the paper's setting);
3. show that correlation-aware fusion beats independence-based fusion and
   voting on the extracted triples.

Run:  python examples/knowledge_extraction.py
"""

from __future__ import annotations

from repro import fit_model, fuse, pairwise_correlations
from repro.baselines import UnionKFuser
from repro.data import ExtractorSpec, Pattern, build_corpus, run_extractors
from repro.eval import auc_pr, binary_metrics, format_table

# Eight extraction patterns over six sentence shapes.  Patterns 0-2 are the
# "easy" shapes every vendor implements; the rest are speciality patterns.
# Susceptibility controls how often a pattern falls for misleading sentences
# (and hence each extractor's precision).
PATTERNS = [
    Pattern(shape=0, hit_rate=0.85, susceptibility=0.45),
    Pattern(shape=1, hit_rate=0.80, susceptibility=0.35),
    Pattern(shape=2, hit_rate=0.75, susceptibility=0.55),
    Pattern(shape=3, hit_rate=0.70, susceptibility=0.30),
    Pattern(shape=4, hit_rate=0.65, susceptibility=0.50),
    Pattern(shape=5, hit_rate=0.60, susceptibility=0.25),
    Pattern(shape=0, hit_rate=0.55, susceptibility=0.80),  # a sloppy rule
    Pattern(shape=3, hit_rate=0.50, susceptibility=0.70),
]

# Six extractors: A, B, C share the core patterns (correlated); D focuses on
# shapes 3-4; E on shapes 4-5 (D and E partially complementary to A-C);
# F implements its own niche rules only.
EXTRACTORS = [
    ExtractorSpec("ExtractorA", patterns=(0, 1, 2)),
    ExtractorSpec("ExtractorB", patterns=(0, 1, 3)),
    ExtractorSpec("ExtractorC", patterns=(0, 2, 7)),
    ExtractorSpec("ExtractorD", patterns=(3, 4)),
    ExtractorSpec("ExtractorE", patterns=(4, 5)),
    ExtractorSpec("ExtractorF", patterns=(6, 7)),
]


def main() -> None:
    corpus = build_corpus(n_sentences=3000, n_shapes=6, fact_rate=0.6, seed=101)
    dataset = run_extractors(corpus, PATTERNS, EXTRACTORS, seed=202)
    print(dataset.description)
    print(dataset.summary())
    print()

    # --- discover the correlation structure from outputs alone ---------
    model = fit_model(dataset.observations, dataset.labels)
    print("Discovered pairwise correlations (true-triple side):")
    rows = []
    for edge in pairwise_correlations(model, "true", min_phi=0.2):
        names = dataset.observations.source_names
        rows.append(
            [
                names[edge.source_i],
                names[edge.source_j],
                "positive" if edge.positive else "negative",
                edge.phi,
            ]
        )
    print(format_table(["extractor", "extractor", "direction", "phi"], rows))
    print(
        "\n(A, B, C share pattern 0 and pairwise speciality patterns; the\n"
        "detector finds them without ever seeing the pattern tables.)\n"
    )

    # --- fuse three ways ------------------------------------------------
    rows = []
    union = UnionKFuser(25).fuse(dataset.observations)
    m = binary_metrics(union.accepted, dataset.labels)
    rows.append(["Union-25", m.precision, m.recall, m.f1,
                 auc_pr(union.scores, dataset.labels)])
    for method in ("precrec", "precreccorr"):
        result = fuse(
            dataset.observations, dataset.labels, method=method, decision_prior=0.5
        )
        m = binary_metrics(result.accepted, dataset.labels)
        rows.append([result.method, m.precision, m.recall, m.f1,
                     auc_pr(result.scores, dataset.labels)])
    print("Fusion quality on the extracted triples:")
    print(
        format_table(
            ["method", "precision", "recall", "F1", "AUC-PR"], rows, float_digits=3
        )
    )


if __name__ == "__main__":
    main()
