"""Restaurant listings: fusing location data from aggregator sites.

Models the paper's RESTAURANT scenario end to end, including how the gold
standard itself is produced: listing sites share upstream feeds (positive
correlation on both truths and stale errors), the training labels come from
a simulated Mechanical Turk majority vote (as in [17]), and fusion has to
hold up under that label noise.

Run:  python examples/restaurant_listings.py
"""

from __future__ import annotations

from repro import fuse
from repro.core import estimate_source_quality
from repro.data import crowd_labels, restaurant_dataset
from repro.eval import binary_metrics, format_table


def main() -> None:
    dataset = restaurant_dataset(seed=23)
    print(dataset.summary())
    print()

    print("Listing-site quality (vs the true gold standard):")
    qualities = estimate_source_quality(dataset.observations, dataset.labels)
    print(
        format_table(
            ["site", "precision", "recall"],
            [[q.name, q.precision, q.recall] for q in qualities],
            float_digits=2,
        )
    )
    print()

    # --- crowdsourced training labels ----------------------------------
    # 10 workers at 90% accuracy, majority vote -- the paper's gold-standard
    # construction for this dataset.
    crowd = crowd_labels(dataset.labels, n_workers=10, worker_accuracy=0.9, seed=7)
    print(
        f"Crowd labelling: {crowd.n_workers} workers at "
        f"{crowd.worker_accuracy:.0%} accuracy; "
        f"majority label error rate {crowd.error_rate(dataset.labels):.1%}"
    )
    print()

    # --- fuse, calibrated on gold vs on crowd labels --------------------
    rows = []
    for label_name, labels in (("gold", dataset.labels), ("crowd", crowd.labels)):
        for method in ("precrec", "precreccorr"):
            result = fuse(
                dataset.observations, labels, method=method, decision_prior=0.5
            )
            metrics = binary_metrics(result.accepted, dataset.labels)
            rows.append(
                [f"{result.method} ({label_name}-calibrated)",
                 metrics.precision, metrics.recall, metrics.f1]
            )
    print("Fusion quality (always judged against the true gold standard):")
    print(format_table(["method", "precision", "recall", "F1"], rows, float_digits=3))
    print()
    print(
        "PrecRecCorr discounts the six sites' shared stale addresses and\n"
        "credits the two complementary niche sites, and the advantage\n"
        "survives crowd-label noise in the calibration data."
    )


if __name__ == "__main__":
    main()
