"""Quickstart: fuse the paper's motivating example (Figure 1).

Five extraction systems processed the Wikipedia page for Barack Obama and
produced ten knowledge triples, six of which are correct.  This script walks
the library's main entry points:

1. load the observation matrix and gold standard;
2. inspect source quality (precision / recall / derived false-positive rate);
3. fuse with majority voting, PrecRec (independence), and PrecRecCorr
   (correlation-aware) and compare their decisions.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import estimate_source_quality, figure1_dataset, fuse
from repro.baselines import UnionKFuser
from repro.eval import binary_metrics, format_table


def main() -> None:
    dataset = figure1_dataset()
    print(dataset.summary())
    print()

    # --- 1. Source quality (Figure 1b) --------------------------------
    qualities = estimate_source_quality(
        dataset.observations, dataset.labels, prior=0.5
    )
    print("Source quality (measured on the gold standard):")
    print(
        format_table(
            ["source", "precision", "recall", "derived q", "good?"],
            [
                [q.name, q.precision, q.recall, q.false_positive_rate, q.is_good]
                for q in qualities
            ],
            float_digits=2,
        )
    )
    print()

    # --- 2. Fuse three ways -------------------------------------------
    voting = UnionKFuser(50).fuse(dataset.observations)
    precrec = fuse(dataset.observations, dataset.labels, method="precrec", prior=0.5)
    correlated = fuse(
        dataset.observations, dataset.labels, method="precreccorr", prior=0.5
    )

    rows = []
    for result in (voting, precrec, correlated):
        metrics = binary_metrics(result.accepted, dataset.labels)
        rows.append([result.method, metrics.precision, metrics.recall, metrics.f1])
    print("Fusion results on the motivating example:")
    print(format_table(["method", "precision", "recall", "F1"], rows, float_digits=2))
    print()

    # --- 3. Per-triple posteriors --------------------------------------
    index = dataset.observations.triple_index
    print("Per-triple decisions (PrecRec vs PrecRecCorr):")
    rows = []
    for j in range(dataset.n_triples):
        rows.append(
            [
                f"t{j + 1}",
                str(index[j]),
                "true" if dataset.labels[j] else "false",
                precrec.scores[j],
                correlated.scores[j],
            ]
        )
    print(
        format_table(
            ["id", "triple", "gold", "Pr indep", "Pr corr"], rows, float_digits=2
        )
    )
    print()
    print(
        "Note how t8/t9 (common mistakes of the correlated extractors S1, S4, "
        "S5)\ndrop below 0.5 once correlations are modelled, matching the "
        "paper's Example 4.4."
    )


if __name__ == "__main__":
    main()
