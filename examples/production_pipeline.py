"""A production-style fusion pipeline using the library's extension APIs.

A downstream team adopting this library typically faces three things the
paper's core experiments abstract away, all supported here:

1. **Confidence-scored inputs** -- extractors emit scores, not booleans;
   the determinisation threshold is a tuning knob (paper Section 2.1).
2. **Domain-dependent quality** -- a source can be sharp in one vertical
   and useless in another (paper Section 7 future work).
3. **Statistical sign-off** -- is the fancy method's advantage real?
   (paired bootstrap over the gold standard).

Run:  python examples/production_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    ConfidenceBundle,
    Triple,
    confidence_threshold_sweep,
    fuse,
    fuse_per_domain,
    matrix_from_confidences,
)
from repro.eval import binary_metrics, format_table, paired_bootstrap
from repro.util.rng import ensure_rng


def build_scored_feeds(seed=77, n_entities=400):
    """Three feeds scoring facts across two verticals.

    ``FeedA`` is precise on electronics but noisy on apparel; ``FeedB`` is
    uniformly decent; ``FeedC`` is a sloppy aggregator.
    """
    rng = ensure_rng(seed)
    triples, truth = [], {}
    for k in range(n_entities):
        domain = "electronics" if k % 2 == 0 else "apparel"
        is_true = bool(rng.random() < 0.55)
        triple = Triple(
            f"product{k}", "spec",
            f"{'ok' if is_true else 'bogus'}-{k}", domain=domain,
        )
        triples.append(triple)
        truth[triple.key] = is_true

    def score(base_true, base_false, triple):
        target = base_true if truth[triple.key] else base_false
        return float(np.clip(target + rng.normal(0, 0.12), 0, 1))

    outputs = {
        "FeedA": [
            (t, score(0.85 if t.domain == "electronics" else 0.55,
                      0.25 if t.domain == "electronics" else 0.45, t))
            for t in triples
        ],
        "FeedB": [(t, score(0.7, 0.35, t)) for t in triples],
        "FeedC": [(t, score(0.6, 0.45, t)) for t in triples],
    }
    return ConfidenceBundle.from_outputs(outputs), truth


def main() -> None:
    bundle, truth = build_scored_feeds()

    # --- 1. pick the determinisation threshold --------------------------
    records = confidence_threshold_sweep(
        bundle, truth, thresholds=[0.4, 0.5, 0.6, 0.7], method="precrec"
    )
    print("Determinisation threshold sweep (PrecRec downstream):")
    print(
        format_table(
            ["threshold", "kept triples", "precision", "recall", "F1"],
            [[r["threshold"], r["n_triples"], r["precision"], r["recall"], r["f1"]]
             for r in records],
        )
    )
    best = max(records, key=lambda r: r["f1"])
    print(f"-> operating at threshold {best['threshold']}\n")

    matrix = matrix_from_confidences(bundle, threshold=best["threshold"])
    labels = np.array([truth[t.key] for t in matrix.triple_index])

    # --- 2. global vs per-domain calibration ----------------------------
    global_result = fuse(matrix, labels, method="precrec", decision_prior=0.5)
    domain_result, report = fuse_per_domain(
        matrix, labels, method="precrec", decision_prior=0.5,
        min_domain_triples=50,
    )
    rows = []
    for result in (global_result, domain_result):
        m = binary_metrics(result.accepted, labels)
        rows.append([result.method, m.precision, m.recall, m.f1])
    print("Global vs per-domain quality models:")
    print(format_table(["method", "precision", "recall", "F1"], rows))
    print(f"(dedicated domain models: {', '.join(report.dedicated_domains)})\n")

    # --- 3. statistical sign-off ----------------------------------------
    comparison = paired_bootstrap(
        domain_result.scores, global_result.scores, labels,
        metric="f1", n_resamples=600, seed=3,
    )
    print("Is the per-domain advantage real?  Paired bootstrap:")
    print(f"  {comparison}")
    verdict = "yes" if comparison.significant(0.05) else "not at the 5% level"
    print(f"  significant: {verdict}")


if __name__ == "__main__":
    main()
